"""Tests for the streaming-rank multi-selection variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import check_multiselect
from repro.core.intermixed import max_groups
from repro.core.multiselect import multi_select, multi_select_streamed
from repro.em import EMFile, Machine, SpecError, composite
from repro.em.records import make_records
from repro.workloads import load_input, random_permutation


def stage_ranks(machine, ranks):
    return EMFile.from_records(
        machine, make_records(np.asarray(ranks, dtype=np.int64)), counted=False
    )


class TestCorrectness:
    @given(
        n=st.integers(10, 3000),
        k_frac=st.floats(0.01, 1.0),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_in_memory_variant(self, n, k_frac, seed):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        rng = np.random.default_rng(seed + 1)
        k = max(1, int(k_frac * min(n, 300)))
        ranks = np.sort(rng.choice(np.arange(1, n + 1), size=k, replace=False))
        rf = stage_ranks(mach, ranks)
        out = multi_select_streamed(mach, f, rf)
        answers = out.to_numpy()
        check_multiselect(recs, ranks, answers)
        out.free()

    def test_k_beyond_memory(self):
        # K = 4M: impossible for the array variant, fine streamed.
        mach = Machine(memory=256, block=8)
        n = 3000
        recs = random_permutation(n, seed=7)
        f = load_input(mach, recs)
        k = 4 * mach.M
        ranks = np.sort(
            np.random.default_rng(8).choice(
                np.arange(1, n + 1), size=k, replace=False
            )
        )
        rf = stage_ranks(mach, ranks)
        out = multi_select_streamed(mach, f, rf)
        check_multiselect(recs, ranks, out.to_numpy())
        assert mach.memory.peak <= mach.M

    def test_all_ranks(self):
        mach = Machine(memory=256, block=8)
        n = 500
        recs = random_permutation(n, seed=9)
        f = load_input(mach, recs)
        ranks = np.arange(1, n + 1)
        rf = stage_ranks(mach, ranks)
        out = multi_select_streamed(mach, f, rf)
        # Selecting every rank is a full sort.
        assert np.array_equal(
            composite(out.to_numpy()), np.sort(composite(recs))
        )

    def test_small_k_single_base(self):
        mach = Machine(memory=4096, block=64)
        n = 20_000
        recs = random_permutation(n, seed=10)
        f = load_input(mach, recs)
        ranks = np.array([1, n // 2, n])
        rf = stage_ranks(mach, ranks)
        out = multi_select_streamed(mach, f, rf)
        check_multiselect(recs, ranks, out.to_numpy())


class TestValidation:
    def test_duplicate_ranks_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=11))
        rf = stage_ranks(mach, [5, 5, 9])
        with pytest.raises(SpecError, match="strictly increasing"):
            multi_select_streamed(mach, f, rf)

    def test_unsorted_ranks_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=12))
        rf = stage_ranks(mach, [9, 5])
        with pytest.raises(SpecError, match="strictly increasing"):
            multi_select_streamed(mach, f, rf)

    def test_out_of_range_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=13))
        with pytest.raises(SpecError):
            multi_select_streamed(mach, f, stage_ranks(mach, [101]))

    def test_empty_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=14))
        with pytest.raises(SpecError):
            multi_select_streamed(mach, f, stage_ranks(mach, []))


class TestCost:
    def test_io_comparable_to_array_variant(self):
        mach1 = Machine(memory=4096, block=64)
        mach2 = Machine(memory=4096, block=64)
        n = 60_000
        recs = random_permutation(n, seed=15)
        f1, f2 = load_input(mach1, recs), load_input(mach2, recs)
        k = 2 * max_groups(mach1)
        ranks = np.linspace(1, n, k).astype(np.int64)
        multi_select(mach1, f1, ranks)
        rf = stage_ranks(mach2, ranks)
        out = multi_select_streamed(mach2, f2, rf)
        out.free()
        # Streaming adds only the rank-file scan and the answer write.
        assert mach2.io.total <= mach1.io.total + 4 * (k // mach2.B + 2)

    def test_no_leaks(self):
        mach = Machine(memory=4096, block=64)
        n = 30_000
        recs = random_permutation(n, seed=16)
        f = load_input(mach, recs)
        ranks = np.linspace(1, n, 300).astype(np.int64)
        rf = stage_ranks(mach, ranks)
        out = multi_select_streamed(mach, f, rf)
        out.free()
        assert mach.memory.in_use == 0
        assert mach.disk.live_blocks == f.num_blocks + rf.num_blocks

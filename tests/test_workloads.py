"""Tests for workload generators."""

import numpy as np
import pytest

from repro.em import Machine, composite
from repro.workloads import (
    WORKLOADS,
    few_distinct,
    hard_permutation,
    load_input,
    random_permutation,
    reverse_sorted,
    sorted_keys,
    uniform_random,
    zipf_like,
)


class TestBasics:
    @pytest.mark.parametrize("name,gen", sorted(WORKLOADS.items()))
    def test_registry_generators(self, name, gen):
        recs = gen(500, seed=1)
        assert len(recs) == 500
        assert np.array_equal(np.sort(recs["uid"]), np.arange(500))
        # Composites distinct regardless of key duplication.
        assert len(np.unique(composite(recs))) == 500

    def test_seeded_reproducibility(self):
        a = uniform_random(1000, seed=7)
        b = uniform_random(1000, seed=7)
        c = uniform_random(1000, seed=8)
        assert np.array_equal(a["key"], b["key"])
        assert not np.array_equal(a["key"], c["key"])

    def test_permutation_is_permutation(self):
        r = random_permutation(300, seed=2)
        assert np.array_equal(np.sort(r["key"]), np.arange(300))

    def test_sorted_and_reverse(self):
        assert np.array_equal(sorted_keys(10)["key"], np.arange(10))
        assert np.array_equal(reverse_sorted(10)["key"], np.arange(10)[::-1])

    def test_few_distinct(self):
        r = few_distinct(500, seed=3, n_distinct=4)
        assert len(np.unique(r["key"])) <= 4

    def test_zipf_skew(self):
        r = zipf_like(5000, seed=4)
        counts = np.bincount(np.minimum(r["key"], 10).astype(int))
        assert counts[1] > len(r) // 4  # heavy head

    def test_nearly_sorted_mostly_ordered(self):
        from repro.workloads import nearly_sorted

        r = nearly_sorted(2000, seed=5, swap_fraction=0.05)
        inversions = int((np.diff(r["key"]) < 0).sum())
        assert 0 < inversions <= 2000 * 0.06
        assert np.array_equal(np.sort(r["key"]), np.arange(2000))

    def test_organ_pipe_shape(self):
        from repro.workloads import organ_pipe

        r = organ_pipe(101)
        keys = r["key"]
        peak = int(np.argmax(keys))
        assert np.all(np.diff(keys[: peak + 1]) >= 0)
        assert np.all(np.diff(keys[peak:]) <= 0)

    def test_sorted_runs_structure(self):
        from repro.workloads import sorted_runs

        r = sorted_runs(1600, seed=6, n_runs=8)
        keys = r["key"].reshape(8, 200)
        for run in keys:
            assert np.all(np.diff(run) >= 0)
        # Globally not sorted (runs interleave).
        assert np.any(np.diff(r["key"]) < 0)
        assert np.array_equal(np.sort(r["key"]), np.arange(1600))


class TestHardPermutation:
    def test_pi_hard_property(self):
        B = 16
        n = 32 * B
        recs = hard_permutation(n, B, seed=5)
        keys = recs["key"].reshape(-1, B)  # row = block, column = offset
        # S_i (offset-i elements) all smaller than S_j for i < j.
        for i in range(B - 1):
            assert keys[:, i].max() < keys[:, i + 1].min()

    def test_requires_divisibility(self):
        with pytest.raises(ValueError):
            hard_permutation(100, 16)

    def test_blocks_align_on_machine(self):
        mach = Machine(memory=256, block=8)
        recs = hard_permutation(240, 8, seed=6)
        f = load_input(mach, recs)
        # Block j must hold offsets 0..B-1 in stratified order.
        blk = f.read_block(0)
        assert len(blk) == 8
        assert np.all(np.diff(blk["key"]) > 0)


class TestLoadInput:
    def test_uncounted(self):
        mach = Machine(memory=256, block=8)
        load_input(mach, random_permutation(100, seed=7))
        assert mach.io.total == 0

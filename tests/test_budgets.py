"""Tests for the I/O-budget regression gate (repro.obs.budget).

Workloads and algorithms are deterministic given their seeds, so the
gate's replay is exact — the committed ``benchmarks/budgets.json`` must
pass verbatim, and an artificially inflated solver must trip it.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.obs import (
    check_budgets,
    default_budgets_path,
    render_budget_report,
    write_budgets,
)
from repro.obs.budget import BUDGETS_SCHEMA_VERSION, DEFAULT_HEADROOM
from repro.obs.solvers import SOLVERS


class TestCommitted:
    def test_committed_budgets_pass_on_this_tree(self):
        path = default_budgets_path()
        assert path.exists(), "benchmarks/budgets.json must be committed"
        checks = check_budgets(path)
        assert [c.solver for c in checks] == list(SOLVERS)
        failing = [c.solver for c in checks if not c.ok]
        assert not failing, (
            f"I/O envelopes exceeded for {failing} — if the cost change is "
            "intentional, rerun `repro budgets --write` and commit the diff"
        )
        report = render_budget_report(checks)
        assert "budget gate: PASS" in report and "FAIL" not in report


class TestWriteAndGate:
    def test_write_check_and_inflation_trips_gate(self, tmp_path, monkeypatch):
        path = write_budgets(tmp_path / "budgets.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == BUDGETS_SCHEMA_VERSION
        assert doc["headroom"] == DEFAULT_HEADROOM
        assert set(doc["budgets"]) == set(SOLVERS)
        for entry in doc["budgets"].values():
            assert entry["envelope"] >= entry["ratio"] > 0
            assert entry["measured"] > 0

        checks = check_budgets(path)
        assert all(c.ok for c in checks)

        # Inflate one algorithm's I/O by ~25% (3 extra input scans —
        # far beyond the 8% headroom) and the gate must fail for it,
        # and only for it.
        base = SOLVERS["sort"]

        def noisy(machine, file, params):
            from repro.em.streams import BlockReader

            out = base.run(machine, file, params)
            for _ in range(3):
                with BlockReader(file, "noise") as reader:
                    for _block in reader:
                        pass
            return out

        monkeypatch.setitem(SOLVERS, "sort", replace(base, run=noisy))
        verdicts = {c.solver: c for c in check_budgets(path)}
        assert not verdicts["sort"].ok
        assert verdicts["sort"].measured > verdicts["sort"].limit
        assert all(c.ok for name, c in verdicts.items() if name != "sort")
        assert "budget gate: FAIL" in render_budget_report(
            list(verdicts.values())
        )

    def test_headroom_below_one_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="headroom"):
            write_budgets(tmp_path / "b.json", headroom=0.9)


class TestFileValidation:
    def test_unknown_solver_in_file_raises(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({
            "schema": BUDGETS_SCHEMA_VERSION,
            "budgets": {"renamed-away": {"envelope": 1.0}},
        }))
        with pytest.raises(KeyError, match="renamed-away"):
            check_budgets(p)

    def test_missing_solvers_fail_loudly_without_running(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({
            "schema": BUDGETS_SCHEMA_VERSION, "budgets": {},
        }))
        checks = check_budgets(p)
        assert len(checks) == len(SOLVERS)
        assert all(not c.ok and c.envelope == 0.0 for c in checks)

    def test_schema_mismatch_raises(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({"schema": 999, "budgets": {}}))
        with pytest.raises(ValueError, match="schema"):
            check_budgets(p)


class TestSolvers:
    def test_runs_are_deterministic(self):
        from repro.obs import run_solver

        a = run_solver("splitters")
        b = run_solver("splitters")
        assert (a["io"], a["comparisons"]) == (b["io"], b["comparisons"])

    def test_unknown_override_rejected(self):
        from repro.obs import build_instance

        with pytest.raises(KeyError, match="bogus"):
            build_instance("sort", {"bogus": 1})

"""Kernel backend registry + cross-backend identity proofs.

The kernel layer (:mod:`repro.em.kernels`) owns block movement and batch
record comparisons; the accounting layer (counters, leases, phases,
traces) stays in ``Disk``/``Machine``.  Swapping the backend must
therefore be *unobservable* in the model: byte-identical answers and
identical counters, per-phase breakdowns, read-id sets, and access
traces.  These tests prove that identity at three levels — primitives,
whole algorithms, the service's query/update paths — and across every
registered experiment in quick mode.
"""

import numpy as np
import pytest

from repro.em import (
    DEFAULT_KERNEL,
    KERNEL_ENV,
    KernelBackend,
    Machine,
    available_kernels,
    composite,
    get_kernel,
)
from repro.em.kernels import _REGISTRY, register_kernel
from repro.em.records import RECORD_DTYPE, make_records
from repro.workloads import load_input, random_permutation, zipf_like
from repro.workloads.queries import zipfian_trace

KERNELS = available_kernels()


def _records(n, seed=0):
    rng = np.random.default_rng(seed)
    out = np.empty(n, dtype=RECORD_DTYPE)
    out["key"] = rng.integers(0, max(1, n // 2), size=n)  # duplicates
    out["uid"] = rng.permutation(n)
    out["grp"] = 0
    return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_builtins_registered(self):
        assert set(KERNELS) >= {"numpy_v1", "vectorized_v2"}
        assert DEFAULT_KERNEL in KERNELS

    def test_get_kernel_by_name_and_default(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert get_kernel("numpy_v1").name == "numpy_v1"
        assert get_kernel(None).name == DEFAULT_KERNEL

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "numpy_v1")
        assert get_kernel(None).name == "numpy_v1"
        assert Machine(memory=64, block=8).kernel.name == "numpy_v1"

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "numpy_v1")
        assert Machine(
            memory=64, block=8, kernel="vectorized_v2"
        ).kernel.name == "vectorized_v2"

    def test_instance_passthrough(self):
        inst = get_kernel("numpy_v1")
        assert get_kernel(inst) is inst
        assert Machine(memory=64, block=8, kernel=inst).kernel is inst

    def test_unknown_kernel_raises_with_known_names(self):
        with pytest.raises(KeyError, match="numpy_v1"):
            get_kernel("no_such_backend")

    def test_duplicate_registration_rejected(self):
        class Dup(KernelBackend):
            name = "numpy_v1"

        with pytest.raises(ValueError, match="duplicate kernel"):
            register_kernel(Dup)
        assert type(_REGISTRY["numpy_v1"]).__name__ == "NumpyV1Kernel"

    def test_unnamed_registration_rejected(self):
        class NoName(KernelBackend):
            pass

        with pytest.raises(ValueError, match="name"):
            register_kernel(NoName)

    def test_trace_metadata_records_kernel(self):
        from repro.obs import Tracer

        tracer = Tracer()
        with tracer.install():
            m = Machine(memory=64, block=8, kernel="numpy_v1")
            m.close()
        (trace,) = tracer.traces
        assert trace.kernel == "numpy_v1"
        assert trace.to_dict()["kernel"] == "numpy_v1"


# ----------------------------------------------------------------------
# Primitive identity
# ----------------------------------------------------------------------
class TestPrimitiveIdentity:
    """Every primitive returns byte-identical output on every backend."""

    @pytest.mark.parametrize("n", [0, 1, 7, 256, 1000])
    def test_sort_by_composite(self, n):
        recs = _records(n, seed=n)
        outs = [get_kernel(k).sort_by_composite(recs) for k in KERNELS]
        for o in outs[1:]:
            assert np.array_equal(outs[0], o)
        if n:
            assert np.all(np.diff(composite(outs[0])) > 0)

    @pytest.mark.parametrize("n", [0, 1, 255, 1000])
    def test_bucket_of_and_grouping(self, n):
        recs = _records(n, seed=n + 1)
        pivots = np.sort(
            np.random.default_rng(5).integers(0, 2**40, size=7)
        )
        idxs = [get_kernel(k).bucket_of(recs, pivots) for k in KERNELS]
        for i in idxs[1:]:
            assert np.array_equal(idxs[0], i)
        groups = [
            list(get_kernel(k).group_by_bucket(recs, idxs[0]))
            for k in KERNELS
        ]
        for g in groups[1:]:
            assert len(g) == len(groups[0])
            for (b0, r0), (b1, r1) in zip(groups[0], g):
                assert b0 == b1
                assert np.array_equal(r0, r1)
        # Groups preserve input order within buckets and skip empties.
        for b, r in groups[0]:
            assert len(r) > 0
            src = recs[idxs[0] == b]
            assert np.array_equal(r, src)

    def test_partition_and_rank_order(self):
        recs = _records(512, seed=3)
        kth = np.array([10, 100, 400])
        parts = [get_kernel(k).partition_at(recs, kth) for k in KERNELS]
        orders = [get_kernel(k).rank_order(recs, kth) for k in KERNELS]
        for p in parts[1:]:
            assert np.array_equal(parts[0], p)
        for o in orders[1:]:
            assert np.array_equal(orders[0], o)
        comp = composite(parts[0])
        for b in kth:
            assert comp[:b].max() < comp[b]

    def test_concat(self):
        parts = [_records(n, seed=n) for n in (0, 3, 64, 1)]
        outs = [get_kernel(k).concat(parts) for k in KERNELS]
        for o in outs[1:]:
            assert np.array_equal(outs[0], o)
        assert len(outs[0]) == 68
        empty = [get_kernel(k).concat([]) for k in KERNELS]
        for e in empty:
            assert len(e) == 0 and e.dtype == RECORD_DTYPE


# ----------------------------------------------------------------------
# Whole-algorithm identity: counters, phases, traces, bytes
# ----------------------------------------------------------------------
def _run_traced(kernel_name, scenario, **mach_kw):
    """Run ``scenario(machine)`` under one backend; return the full
    observable state: (reads, writes, per-phase, comparisons, mem peak,
    read-id set, access trace, output bytes)."""
    mach_kw.setdefault("memory", 512)
    mach_kw.setdefault("block", 16)
    mach = Machine(kernel=kernel_name, **mach_kw)
    mach.disk.start_trace()
    out = scenario(mach)
    c = mach.snapshot()
    state = (
        c.reads,
        c.writes,
        dict(c.by_phase),
        mach.comparisons,
        mach.memory.peak,
        set(mach.disk.read_block_ids),
        mach.disk.stop_trace(),
    )
    return state, np.asarray(out)


def _assert_identical(scenario, **mach_kw):
    ref_state, ref_out = _run_traced(KERNELS[0], scenario, **mach_kw)
    for name in KERNELS[1:]:
        state, out = _run_traced(name, scenario, **mach_kw)
        assert state[:6] == ref_state[:6], f"counters diverge on {name}"
        assert state[6] == ref_state[6], f"trace diverges on {name}"
        assert out.tobytes() == ref_out.tobytes(), f"bytes diverge on {name}"


class TestAlgorithmIdentity:
    N = 3000

    def test_external_sort(self):
        recs = random_permutation(self.N, seed=1)

        def scenario(mach):
            from repro.alg.sort import external_sort

            f = load_input(mach, recs)
            out = external_sort(mach, f)
            data = out.to_numpy(counted=False)
            out.free()
            f.free()
            return data

        _assert_identical(scenario)

    def test_multipartition(self):
        recs = zipf_like(self.N, seed=2)

        def scenario(mach):
            from repro.alg.multipartition import multi_partition_at_ranks

            f = load_input(mach, recs)
            parts = multi_partition_at_ranks(mach, f, [500, 1500, 2500])
            data = np.concatenate(
                [composite(p) for p in parts.to_numpy_partitions()]
            )
            parts.free()
            f.free()
            return data

        _assert_identical(scenario)

    def test_selection(self):
        recs = random_permutation(self.N, seed=3)

        def scenario(mach):
            from repro.alg.selection import select_rank_fast

            f = load_input(mach, recs)
            x = select_rank_fast(mach, f, self.N // 3)
            f.free()
            return np.array([x])

        _assert_identical(scenario)

    def test_multiselect(self):
        recs = zipf_like(self.N, seed=4)
        ranks = np.random.default_rng(7).integers(1, self.N + 1, size=24)

        def scenario(mach):
            from repro.core import multi_select

            f = load_input(mach, recs)
            out = multi_select(mach, f, ranks)
            f.free()
            return out

        _assert_identical(scenario)

    def test_splitters(self):
        recs = random_permutation(self.N, seed=5)

        def scenario(mach):
            from repro.core import approximate_splitters

            f = load_input(mach, recs)
            res = approximate_splitters(
                mach, f, 16, self.N // 64, self.N // 4
            )
            f.free()
            return res.splitters

        _assert_identical(scenario)

    def test_service_queries_and_updates(self):
        recs = random_permutation(4000, seed=6)
        trace = zipfian_trace(64, 4000, seed=8)

        def scenario(mach):
            from repro.service import PartitionIndex

            f = load_input(mach, recs)
            index = PartitionIndex.build(mach, f, 16)
            f.free()
            got = [index.batch_select(trace)]
            index.append(np.arange(10**6, 10**6 + 300))
            for key in np.sort(recs["key"])[:120]:
                index.delete(int(key))
            index.flush_updates()
            got.append(index.batch_select(np.arange(1, index.n_live + 1)))
            index.close()
            return np.concatenate([composite(g) for g in got])

        _assert_identical(scenario, memory=2048, block=32)


# ----------------------------------------------------------------------
# Experiment-level identity: all registered experiments, quick mode
# ----------------------------------------------------------------------
def _experiment_ids():
    from repro.experiments import all_experiments

    return [e.exp_id for e in all_experiments()]


@pytest.mark.parametrize("exp_id", _experiment_ids())
def test_experiment_identity_across_kernels(exp_id, monkeypatch):
    """Every experiment produces the identical result and identical
    aggregate machine counters under every backend."""
    from repro.em.machine import observe_machines
    from repro.experiments import get_experiment

    outcomes = []
    for name in KERNELS:
        monkeypatch.setenv(KERNEL_ENV, name)
        machines = []
        with observe_machines(machines.append):
            result = get_experiment(exp_id)(quick=True)
        outcomes.append(
            (
                result.to_dict(),
                len(machines),
                sum(m.disk.lifetime.reads for m in machines),
                sum(m.disk.lifetime.writes for m in machines),
                sum(m.lifetime_comparisons for m in machines),
                max((m.memory.peak for m in machines), default=0),
            )
        )
    ref = outcomes[0]
    for name, other in zip(KERNELS[1:], outcomes[1:]):
        assert other == ref, f"{exp_id} diverges under kernel {name}"

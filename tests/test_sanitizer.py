"""Dynamic sanitizer tests: strict-mode traps, the ``EM_SANITIZE`` env
default, and the tracer's counter-conservation check.

Every trap asserts the *exact* sanitizer error class, and each strict
error is also an instance of the lenient-API error it refines
(``UseAfterFreeError`` is a ``BadBlockError``, ``DoubleReleaseError``
is a ``LeaseError``, ...) so code written against the lenient API keeps
working unchanged under ``EM_SANITIZE=1``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.em import (
    BadBlockError,
    CounterConservationError,
    DoubleFreeError,
    DoubleReleaseError,
    LeaseError,
    LeaseLeakError,
    Machine,
    UninitializedReadError,
    UseAfterFreeError,
    make_records,
    sanitize_default,
)
from repro.obs import Tracer


def _mk(sanitize: bool = True) -> Machine:
    return Machine(memory=256, block=8, sanitize=sanitize)


def _write_one(machine: Machine) -> int:
    (bid,) = machine.disk.allocate(1)
    machine.disk.write(bid, make_records(np.arange(8)))
    return bid


class TestUseAfterFree:
    def test_read_after_free_raises(self):
        m = _mk()
        bid = _write_one(m)
        m.disk.free([bid])
        with pytest.raises(UseAfterFreeError):
            m.disk.read(bid)

    def test_write_after_free_raises(self):
        m = _mk()
        bid = _write_one(m)
        m.disk.free([bid])
        with pytest.raises(UseAfterFreeError):
            m.disk.write(bid, make_records(np.arange(8)))

    def test_read_many_after_free_raises(self):
        m = _mk()
        live = _write_one(m)
        dead = _write_one(m)
        m.disk.free([dead])
        with pytest.raises(UseAfterFreeError):
            m.disk.read_many([live, dead])

    def test_peek_after_free_raises(self):
        m = _mk()
        bid = _write_one(m)
        m.disk.free([bid])
        with pytest.raises(UseAfterFreeError):
            m.disk.peek(bid)

    def test_is_bad_block_subclass(self):
        # Lenient-API handlers (``except BadBlockError``) must keep
        # catching the strict error.
        assert issubclass(UseAfterFreeError, BadBlockError)

    def test_lenient_mode_raises_plain_bad_block(self):
        m = _mk(sanitize=False)
        bid = _write_one(m)
        m.disk.free([bid])
        with pytest.raises(BadBlockError) as exc_info:
            m.disk.read(bid)
        assert not isinstance(exc_info.value, UseAfterFreeError)


class TestDoubleFree:
    def test_double_free_raises(self):
        m = _mk()
        bid = _write_one(m)
        m.disk.free([bid])
        with pytest.raises(DoubleFreeError):
            m.disk.free([bid])

    def test_double_free_leaves_live_blocks_intact(self):
        # Regression: the failed free must not corrupt live_blocks —
        # validation happens before any deletion.
        m = _mk()
        live = _write_one(m)
        dead = _write_one(m)
        m.disk.free([dead])
        before = m.disk.live_blocks
        with pytest.raises(DoubleFreeError):
            m.disk.free([live, dead])
        assert m.disk.live_blocks == before
        m.disk.read(live)  # still allocated and readable

    def test_is_bad_block_subclass(self):
        assert issubclass(DoubleFreeError, BadBlockError)

    def test_lenient_mode_raises_plain_bad_block(self):
        m = _mk(sanitize=False)
        bid = _write_one(m)
        m.disk.free([bid])
        with pytest.raises(BadBlockError) as exc_info:
            m.disk.free([bid])
        assert not isinstance(exc_info.value, DoubleFreeError)


class TestUninitializedRead:
    def test_read_of_never_written_block_raises(self):
        m = _mk()
        (bid,) = m.disk.allocate(1)
        with pytest.raises(UninitializedReadError):
            m.disk.read(bid)

    def test_read_many_flags_the_uninitialized_member(self):
        m = _mk()
        written = _write_one(m)
        (blank,) = m.disk.allocate(1)
        with pytest.raises(UninitializedReadError):
            m.disk.read_many([written, blank])

    def test_written_block_reads_fine(self):
        m = _mk()
        bid = _write_one(m)
        assert len(m.disk.read(bid)) == 8

    def test_peek_of_never_written_block_is_allowed(self):
        # peek is the uncounted verification API; fresh blocks are
        # legitimately empty there.
        m = _mk()
        (bid,) = m.disk.allocate(1)
        assert len(m.disk.peek(bid)) == 0

    def test_lenient_mode_returns_empty(self):
        m = _mk(sanitize=False)
        (bid,) = m.disk.allocate(1)
        assert len(m.disk.read(bid)) == 0


class TestLeaseLifecycle:
    def test_double_release_raises(self):
        m = _mk()
        lease = m.memory.lease(8, "x")
        lease.release()
        with pytest.raises(DoubleReleaseError):
            lease.release()

    def test_double_release_does_not_corrupt_accounting(self):
        # Regression: the second release must not subtract again.
        m = _mk()
        keep = m.memory.lease(16, "keep")
        lease = m.memory.lease(8, "x")
        lease.release()
        with pytest.raises(DoubleReleaseError):
            lease.release()
        assert m.memory.in_use == 16
        keep.release()
        assert m.memory.in_use == 0

    def test_is_lease_error_subclass(self):
        assert issubclass(DoubleReleaseError, LeaseError)
        assert issubclass(LeaseLeakError, LeaseError)

    def test_lenient_mode_raises_plain_lease_error(self):
        m = _mk(sanitize=False)
        lease = m.memory.lease(8, "x")
        lease.release()
        with pytest.raises(LeaseError) as exc_info:
            lease.release()
        assert not isinstance(exc_info.value, DoubleReleaseError)

    def test_leak_detected_at_close(self):
        m = _mk()
        m.memory.lease(8, "leaky")  # emlint: disable=R5 — deliberate leak fixture
        with pytest.raises(LeaseLeakError, match="leaky"):
            m.close()

    def test_clean_close_after_release(self):
        m = _mk()
        lease = m.memory.lease(8, "x")
        lease.release()
        m.close()

    def test_context_managed_leases_never_leak(self):
        m = _mk()
        with m.memory.lease(8, "cm"):
            pass
        m.close()

    def test_machine_context_manager_checks_on_exit(self):
        with pytest.raises(LeaseLeakError):
            with _mk() as m:
                m.memory.lease(8, "leaky")  # emlint: disable=R5 — deliberate leak fixture

    def test_lenient_close_ignores_leaks(self):
        m = _mk(sanitize=False)
        m.memory.lease(8, "leaky")  # emlint: disable=R5 — deliberate leak fixture
        m.close()


class TestEnvDefault:
    def test_env_var_enables_sanitize(self, monkeypatch):
        monkeypatch.setenv("EM_SANITIZE", "1")
        assert sanitize_default()
        assert Machine(memory=256, block=8).sanitize

    def test_env_var_off_values(self, monkeypatch):
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv("EM_SANITIZE", value)
            assert not sanitize_default()
        monkeypatch.delenv("EM_SANITIZE")
        assert not sanitize_default()

    def test_explicit_argument_overrides_env(self, monkeypatch):
        monkeypatch.setenv("EM_SANITIZE", "1")
        assert not Machine(memory=256, block=8, sanitize=False).sanitize
        monkeypatch.setenv("EM_SANITIZE", "0")
        assert Machine(memory=256, block=8, sanitize=True).sanitize


class TestCounterConservation:
    def _traced(self, machine):
        tracer = Tracer()
        trace = tracer.attach(machine)
        bid = _write_one(machine)
        with machine.phase("work"):
            machine.disk.read(bid)
            machine.charge_comparisons(5)
        machine.disk.read(bid)
        return tracer, trace

    def test_clean_run_conserves(self):
        m = _mk()
        tracer, trace = self._traced(m)
        tracer.detach(m)  # must not raise
        assert trace.conservation_error() is None

    def test_span_drift_raises_on_detach(self):
        # Deliberate drift: mutate a span behind the tracer's back.
        m = _mk()
        tracer, trace = self._traced(m)
        trace.root.reads += 1
        with pytest.raises(CounterConservationError, match="reads"):
            tracer.detach(m)

    def test_comparison_drift_raises_on_detach(self):
        m = _mk()
        tracer, trace = self._traced(m)
        trace.root.children[0].comparisons -= 1
        with pytest.raises(CounterConservationError, match="comparisons"):
            tracer.detach(m)

    def test_lenient_machine_skips_the_check(self):
        m = _mk(sanitize=False)
        tracer, trace = self._traced(m)
        trace.root.reads += 1
        tracer.detach(m)  # drift ignored outside sanitize mode
        assert trace.conservation_error() is not None

    def test_conservation_survives_reset_counters(self):
        # Lifetime counters back the check, so a measurement-window
        # reset between attach and detach must not create false drift.
        m = _mk()
        tracer, _ = self._traced(m)
        m.reset_counters()
        bid = _write_one(m)
        m.disk.read(bid)
        tracer.detach(m)

    def test_algorithm_run_conserves_under_sanitize(self):
        from repro.alg.sort import external_sort
        from repro.workloads import load_input
        from repro.workloads.generators import random_permutation

        m = Machine(memory=512, block=16, sanitize=True)
        file = load_input(m, random_permutation(2000, seed=3))
        m.reset_counters()
        tracer = Tracer()
        tracer.attach(m)
        out = external_sort(m, file)
        out.free()
        file.free()
        tracer.detach(m)
        m.close()

"""AST lint engine tests: one positive and one negative fixture per
rule, the v2 whole-program layer (call graph, dataflow, cache), seeded
defects the v1 heuristics missed, suppression directives and their edge
cases, rule selection, report output, and the repo-wide gate itself.
R7 (shard isolation) fixtures live with the subsystem they guard, in
``tests/test_shard.py``.
"""

from __future__ import annotations

import json
import textwrap
from collections import Counter

import pytest

from repro.lint import (
    ALGORITHM_SUBSYSTEMS,
    EM_LAYER_SUBSYSTEMS,
    CallGraph,
    LintFinding,
    LintReport,
    ModuleContext,
    ProjectIndex,
    all_rules,
    baseline_delta,
    compute_facts,
    get_rules,
    git_changed_files,
    lint_paths,
    lint_source,
    summarize_module,
)

ALG_PATH = "repro/alg/fixture.py"


def _lint(src: str, relpath: str = ALG_PATH, rules=None):
    return lint_source(textwrap.dedent(src), relpath, rules)


def _active(src: str, relpath: str = ALG_PATH, rules=None):
    return _lint(src, relpath, rules)[0]


def _rule_ids(findings):
    return [f.rule for f in findings]


def _project_findings(files: dict, rule_id: str):
    """Run one project rule over a multi-module fixture corpus."""
    summaries = [
        summarize_module(
            ModuleContext.from_source(textwrap.dedent(src), rel)
        )
        for rel, src in files.items()
    ]
    project = ProjectIndex(summaries)
    facts = compute_facts(project, CallGraph(project))
    (rule,) = get_rules([rule_id])
    return sorted(rule.check_project(facts))


class TestRegistry:
    def test_all_nine_rules_registered(self):
        assert [r.rule_id for r in all_rules()] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        ]

    def test_get_rules_subset_and_case(self):
        assert [r.rule_id for r in get_rules(["r3", "R1"])] == ["R3", "R1"]

    def test_get_rules_unknown_raises(self):
        with pytest.raises(KeyError, match="R99"):
            get_rules(["R99"])

    def test_rules_carry_rationales(self):
        for rule in all_rules():
            assert rule.title and len(rule.rationale) > 40

    def test_project_rules_are_marked(self):
        scopes = {r.rule_id: r.scope for r in all_rules()}
        assert scopes["R3"] == scopes["R5"] == "project"
        assert scopes["R8"] == scopes["R9"] == "project"
        assert scopes["R1"] == scopes["R4"] == "module"

    def test_layer_constants(self):
        assert "alg" in ALGORITHM_SUBSYSTEMS and "em" in EM_LAYER_SUBSYSTEMS


class TestR1PrivateInternals:
    POSITIVE = """
        def f(machine):
            return len(machine.disk._blocks)
        """

    def test_positive(self):
        (finding,) = _active(self.POSITIVE)
        assert finding.rule == "R1"
        assert "_blocks" in finding.message

    def test_negative_in_em_layer(self):
        assert not _active(self.POSITIVE, "repro/em/helper.py")

    def test_negative_in_obs_layer(self):
        assert not _active(self.POSITIVE, "repro/obs/helper.py")

    def test_negative_self_attribute(self):
        src = """
            class Thing:
                def f(self):
                    return self._peak
            """
        assert not _active(src)

    def test_flags_accountant_internals(self):
        src = """
            def f(machine):
                machine.memory._in_use = 0
            """
        assert _rule_ids(_active(src)) == ["R1"]


class TestR2UncountedEscapes:
    def test_positive_peek(self):
        (finding,) = _active("def f(m):\n    return m.disk.peek(0)\n")
        assert finding.rule == "R2" and "peek" in finding.message

    def test_positive_uncounted(self):
        src = """
            def f(machine):
                with machine.uncounted():
                    pass
            """
        assert _rule_ids(_active(src)) == ["R2"]

    def test_positive_default_to_numpy(self):
        (finding,) = _active("def f(file):\n    return file.to_numpy()\n")
        assert finding.rule == "R2" and "counted=True" in finding.message

    def test_negative_counted_to_numpy(self):
        assert not _active("def f(file):\n    return file.to_numpy(counted=True)\n")

    def test_negative_outside_algorithm_layer(self):
        src = "def f(m):\n    return m.disk.peek(0)\n"
        assert not _active(src, "repro/obs/probe.py")
        assert not _active(src, "repro/workloads/gen.py")


class TestR3RawComparisons:
    def test_positive_np_sort_on_records(self):
        src = """
            def f(records):
                return np.sort(composite(records))
            """
        (finding,) = _active(src)
        assert finding.rule == "R3" and "np.sort" in finding.message

    def test_positive_sort_records_helper(self):
        # R6 (kernel bypass) fires on the same call; check R3 is there.
        findings = _active("def f(r):\n    return sort_records(r)\n")
        assert sorted(_rule_ids(findings)) == ["R3", "R6"]

    def test_positive_raw_compare_on_keys(self):
        src = """
            def f(a, b):
                return a["key"] < b["key"]
            """
        (finding,) = _active(src)
        assert finding.rule == "R3" and "raw order comparison" in finding.message

    def test_negative_charged_function(self):
        src = """
            def f(machine, records):
                cmp_sort(machine, len(records))
                return np.sort(composite(records))
            """
        assert not _active(src)

    def test_negative_non_record_sort(self):
        # Index bookkeeping is free in the model; only record
        # comparisons are counted.
        assert not _active("def f(idx):\n    return np.sort(idx)\n")

    def test_negative_outside_algorithm_layer(self):
        src = "def f(r):\n    return sort_records(r)\n"
        assert not _active(src, "repro/workloads/gen.py")


class TestR3Interprocedural:
    """The dataflow upgrades: what v1 could not see."""

    def test_helper_covered_by_charging_caller(self):
        # v1 needed a suppression here; v2 clears the pure helper
        # because its only caller charges.
        src = """
            def helper(records):
                return np.sort(composite(records))

            def caller(machine, records):
                cmp_sort(machine, len(records))
                return helper(records)
            """
        assert not _active(src)

    def test_transitive_charge_through_callee(self):
        src = """
            def charge(machine, n):
                cmp_sort(machine, n)

            def f(machine, records):
                charge(machine, len(records))
                return np.sort(composite(records))
            """
        assert not _active(src)

    def test_seeded_defect_local_shadow_does_not_charge(self):
        # v1 false negative: a local `cmp_sort` shadow excused the sink
        # by name.  v2 resolves the call to the shadow, sees it never
        # reaches the machine, and flags the sink.
        src = """
            def cmp_sort(machine, n):
                return n  # never touches the machine

            def f(machine, records):
                cmp_sort(machine, len(records))
                return np.sort(composite(records))
            """
        (finding,) = _active(src)
        assert finding.rule == "R3"

    def test_uncharged_helper_with_uncharged_caller_still_flagged(self):
        src = """
            def helper(records):
                return np.sort(composite(records))

            def caller(records):
                return helper(records)
            """
        findings = _active(src)
        assert _rule_ids(findings) == ["R3"]


class TestR4UnseededRng:
    def test_positive_stdlib_random(self):
        (finding,) = _active("def f():\n    return random.random()\n")
        assert finding.rule == "R4" and "global RNG" in finding.message

    def test_positive_legacy_np_random(self):
        (finding,) = _active("def f():\n    return np.random.rand(3)\n")
        assert finding.rule == "R4"

    def test_positive_unseeded_default_rng(self):
        (finding,) = _active("def f():\n    return np.random.default_rng()\n")
        assert "seed" in finding.message

    def test_negative_seeded_default_rng(self):
        assert not _active("def f(seed):\n    return np.random.default_rng(seed)\n")

    def test_negative_seeded_random_class(self):
        assert not _active("def f(seed):\n    return random.Random(seed)\n")

    def test_applies_everywhere_in_package(self):
        # Unlike R2/R3, reproducibility is global — em and obs too.
        src = "def f():\n    return np.random.rand()\n"
        assert _rule_ids(_active(src, "repro/em/helper.py")) == ["R4"]
        assert _rule_ids(_active(src, "repro/obs/helper.py")) == ["R4"]

    def test_applies_to_scripts_and_benchmarks(self):
        # Experiment drivers shape recorded results just as much as the
        # package; the default lint set includes both trees.
        src = "def f():\n    return np.random.rand()\n"
        assert _rule_ids(_active(src, "scripts/gen_data.py")) == ["R4"]
        assert _rule_ids(_active(src, "benchmarks/test_bench.py")) == ["R4"]

    def test_default_lint_set_includes_scripts_and_benchmarks(self):
        report = lint_paths()
        # the repo gate actually walked files outside src/repro
        prefixes = {f.split("/")[0] for f in _repo_file_set(report)}
        assert {"scripts", "benchmarks"} <= prefixes


def _repo_file_set(report):
    # files aren't carried per-path in the report; re-derive from the
    # default discovery to keep this assertion independent.
    from repro.lint import default_lint_paths, default_root, iter_python_files
    root = default_root()
    from repro.lint.runner import _relpath
    return [
        _relpath(f, root)
        for f in iter_python_files(default_lint_paths(root))
    ]


class TestR5LeaseLifecycle:
    def test_positive_unprotected_assignment(self):
        src = """
            def f(machine):
                lease = machine.memory.lease(8, "x")
                work()
                lease.release()
            """
        (finding,) = _active(src)
        assert finding.rule == "R5" and "finally" in finding.message

    def test_positive_bare_call(self):
        (finding,) = _active("def f(m):\n    m.memory.lease(8, 'x')\n")
        assert finding.rule == "R5"

    def test_negative_with_statement(self):
        src = """
            def f(machine):
                with machine.memory.lease(8, "x"):
                    work()
            """
        assert not _active(src)

    def test_negative_try_finally(self):
        src = """
            def f(machine):
                lease = machine.memory.lease(8, "x")
                try:
                    work()
                finally:
                    lease.release()
            """
        assert not _active(src)

    def test_negative_later_with(self):
        src = """
            def f(machine):
                lease = machine.memory.lease(8, "x")
                with lease:
                    work()
            """
        assert not _active(src)

    def test_negative_attribute_storage_with_release(self):
        src = """
            class Index:
                def __init__(self, machine):
                    self._lease = machine.memory.lease(8, "idx")

                def close(self):
                    self._lease.release()
            """
        assert not _active(src)

    def test_negative_in_tests(self):
        src = "def f(m):\n    m.memory.lease(8, 'x')\n"
        assert not _active(src, "repro/em/tests/test_x.py")


class TestR5Interprocedural:
    """v2: the lease is followed across functions and classes."""

    def test_seeded_defect_write_only_attribute_leaks(self):
        # v1 exempted every attribute store; v2 demands the class (or a
        # relative) provably release the attribute.
        src = """
            class Index:
                def __init__(self, machine):
                    self._lease = machine.memory.lease(8, "idx")
            """
        (finding,) = _active(src)
        assert finding.rule == "R5" and "write-only" in finding.message

    def test_attribute_released_in_subclass_is_clean(self):
        src = """
            class Base:
                def __init__(self, machine):
                    self._lease = machine.memory.lease(8, "idx")

            class Child(Base):
                def close(self):
                    self._lease.release()
            """
        assert not _active(src)

    def test_lease_returner_call_site_discard_flagged(self):
        src = """
            def make_lease(machine):
                return machine.memory.lease(8, "x")

            def bad(machine):
                make_lease(machine)
            """
        (finding,) = _active(src)
        assert finding.rule == "R5"
        assert "make_lease" in finding.message

    def test_lease_returner_call_site_with_is_clean(self):
        src = """
            def make_lease(machine):
                return machine.memory.lease(8, "x")

            def good(machine):
                with make_lease(machine):
                    work()
            """
        assert not _active(src)

    def test_wrapper_propagates_returner_obligation(self):
        src = """
            def make_lease(machine):
                return machine.memory.lease(8, "x")

            def wrapper(machine):
                return make_lease(machine)

            def bad(machine):
                lease = wrapper(machine)
                work()
            """
        (finding,) = _active(src)
        assert finding.rule == "R5" and "wrapper" in finding.message

    def test_passed_to_releasing_callee_is_clean(self):
        src = """
            def consume(lease):
                try:
                    work()
                finally:
                    lease.release()

            def f(machine):
                held = machine.memory.lease(8, "x")
                consume(held)
            """
        assert not _active(src)

    def test_passed_to_non_releasing_callee_flagged(self):
        src = """
            def consume(lease):
                return lease.size

            def f(machine):
                held = machine.memory.lease(8, "x")
                consume(held)
            """
        (finding,) = _active(src)
        assert finding.rule == "R5" and "consume" in finding.message


class TestR6KernelBypass:
    def test_positive_concat_records(self):
        (finding,) = _active(
            "def f(m, parts):\n    return concat_records(parts)\n",
            rules=get_rules(["R6"]),
        )
        assert finding.rule == "R6" and "machine.kernel.concat" in finding.message

    def test_positive_sort_records(self):
        (finding,) = _active(
            "def f(m, r):\n    return sort_records(r)\n", rules=get_rules(["R6"])
        )
        assert "sort_by_composite" in finding.message

    def test_positive_record_argpartition(self):
        (finding,) = _active(
            "def f(m, r, k):\n"
            "    return np.argpartition(composite(r), k)\n",
            rules=get_rules(["R6"]),
        )
        assert "rank_order" in finding.message

    def test_negative_plain_argpartition(self):
        # Index arithmetic is not record movement — no kernel needed.
        assert not _active(
            "def f(m, idx, k):\n    return np.argpartition(idx, k)\n",
            rules=get_rules(["R6"]),
        )

    def test_negative_kernel_dispatch(self):
        assert not _active(
            "def f(m, parts):\n    return m.kernel.concat(parts)\n",
            rules=get_rules(["R6"]),
        )

    def test_exempt_outside_algorithm_layer(self):
        src = "def f(r):\n    return sort_records(r)\n"
        assert not _active(src, "repro/em/kernels/numpy_v1.py", rules=get_rules(["R6"]))
        assert not _active(src, "repro/em/records.py", rules=get_rules(["R6"]))
        assert not _active(src, "tests/test_x.py", rules=get_rules(["R6"]))


ROUTER_OK = """
    class Router:
        def _request(self, shard, kind, payload=None):
            return send(shard, kind, payload)

        def ingest(self, recs):
            return self._request(0, "ingest", recs)
    """

WORKER_OK = """
    class ShardWorker:
        def _handle(self, kind, payload):
            if kind == "ingest":
                return ("ok", 1)
            return ("error", "unknown")
    """


class TestR8ShardProtocol:
    def test_conforming_protocol_is_clean(self):
        assert not _project_findings(
            {
                "repro/shard/router.py": ROUTER_OK,
                "repro/shard/worker.py": WORKER_OK,
            },
            "R8",
        )

    def test_seeded_defect_router_only_kind(self):
        router = """
            class Router:
                def _request(self, shard, kind, payload=None):
                    return send(shard, kind, payload)

                def ingest(self, recs):
                    return self._request(0, "ingest", recs)

                def splitz(self):
                    return self._request(0, "splitz", None)
            """
        findings = _project_findings(
            {
                "repro/shard/router.py": router,
                "repro/shard/worker.py": WORKER_OK,
            },
            "R8",
        )
        assert len(findings) == 1
        assert findings[0].rule == "R8"
        assert '"splitz"' in findings[0].message
        assert findings[0].path == "repro/shard/router.py"

    def test_dead_handler_arm_flagged(self):
        worker = """
            class ShardWorker:
                def _handle(self, kind, payload):
                    if kind == "ingest":
                        return ("ok", 1)
                    if kind == "ghost":
                        return ("gone", None)
                    return ("error", "unknown")
            """
        findings = _project_findings(
            {
                "repro/shard/router.py": ROUTER_OK,
                "repro/shard/worker.py": worker,
            },
            "R8",
        )
        assert len(findings) == 1
        assert '"ghost"' in findings[0].message
        assert "dead protocol arm" in findings[0].message

    def test_doc_table_reply_mismatch_flagged(self):
        worker = '''
            """Worker.

            ========  ========  ==========
            kind      payload   reply
            ========  ========  ==========
            ingest    recs      done: n
            ========  ========  ==========
            """

            class ShardWorker:
                def _handle(self, kind, payload):
                    if kind == "ingest":
                        return ("ok", 1)
                    return ("error", "unknown")
            '''
        findings = _project_findings(
            {
                "repro/shard/router.py": ROUTER_OK,
                "repro/shard/worker.py": worker,
            },
            "R8",
        )
        assert any(
            'says "ingest" replies "done"' in f.message for f in findings
        )

    def test_documented_but_unhandled_kind_flagged(self):
        worker = '''
            """Worker.

            ========  ========  ==========
            kind      payload   reply
            ========  ========  ==========
            ingest    recs      ok: n
            seal      k         sealed: n
            ========  ========  ==========
            """

            class ShardWorker:
                def _handle(self, kind, payload):
                    if kind == "ingest":
                        return ("ok", 1)
                    return ("error", "unknown")
            '''
        findings = _project_findings(
            {
                "repro/shard/router.py": ROUTER_OK,
                "repro/shard/worker.py": worker,
            },
            "R8",
        )
        assert any(
            'documents request kind "seal"' in f.message for f in findings
        )

    def test_inert_without_shard_modules(self):
        assert not _project_findings({ALG_PATH: "x = 1\n"}, "R8")


class TestR9RegistryConsistency:
    def test_phase_label_with_slash_flagged(self):
        src = """
            def f(machine):
                with machine.phase("partition/distribute"):
                    pass
            """
        (finding,) = _active(src)
        assert finding.rule == "R9" and "'/'" in finding.message

    def test_phase_label_plain_is_clean(self):
        src = """
            def f(machine):
                with machine.phase("distribute"):
                    pass
            """
        assert not _active(src)

    def test_dynamic_phase_label_skipped(self):
        src = """
            def f(machine, label):
                with machine.phase(label):
                    pass
            """
        assert not _active(src)

    def test_unknown_formula_reference_flagged(self):
        findings = _project_findings(
            {
                "repro/obs/solvers.py": """
                    SOLVERS = {
                        "sort": Solver(name="sort", formula_name="missing_fn"),
                    }
                    """,
                "repro/bounds/formulas.py": """
                    def sort_io(n, m, b):
                        return n
                    """,
            },
            "R9",
        )
        assert len(findings) == 1
        assert "missing_fn" in findings[0].message
        assert findings[0].path == "repro/obs/solvers.py"

    def test_composite_formula_expressions_resolve_per_identifier(self):
        assert not _project_findings(
            {
                "repro/obs/solvers.py": """
                    SOLVERS = {
                        "p": Solver(name="p", formula_name="a_io + b_io"),
                    }
                    """,
                "repro/bounds/formulas.py": """
                    def a_io(n):
                        return n

                    def b_io(n):
                        return n
                    """,
            },
            "R9",
        )

    def test_repo_triangle_holds(self):
        # The real registry: every solver has a budget envelope and a
        # formula; every budget entry has a solver (R9 on the repo is
        # part of the repo gate, this pins it directly).
        report = lint_paths(rule_ids=["R9"])
        assert report.findings == [], "\n" + report.render()


class TestCallGraphGolden:
    def test_resolution_rate_at_least_95_percent(self):
        report = lint_paths()
        assert report.callgraph["call_sites"] > 3000
        assert report.callgraph["resolution_rate"] >= 0.95, report.callgraph

    def test_known_edges_resolve(self):
        from repro.lint import default_root, iter_python_files
        from repro.lint.runner import _relpath, default_lint_paths

        root = default_root()
        summaries = []
        for f in iter_python_files(default_lint_paths(root)):
            summaries.append(
                summarize_module(
                    ModuleContext.from_source(f.read_text(), _relpath(f, root))
                )
            )
        project = ProjectIndex(summaries, root=root)
        graph = CallGraph(project)
        # selection's helper is called by the mo5 pipeline
        callers = graph.callers("repro.alg.selection._group_medians")
        assert any("median_of_five_file" in c for c in callers)
        # cmp_median5 resolves into the em comparisons module
        callees = graph.callees(
            "repro.alg.selection.median_of_five_file"
        )
        assert "repro.em.comparisons.cmp_median5" in callees


class TestSuppression:
    def test_same_line_directive_suppresses(self):
        active, suppressed = _lint(
            "def f():\n    return np.random.rand()  # emlint: disable=R4\n"
        )
        assert not active
        assert _rule_ids(suppressed) == ["R4"]

    def test_bare_disable_suppresses_all_rules(self):
        active, suppressed = _lint(
            "def f(m):\n    return m.disk.peek(0)  # emlint: disable\n"
        )
        assert not active and _rule_ids(suppressed) == ["R2"]

    def test_directive_for_other_rule_does_not_suppress(self):
        active, suppressed = _lint(
            "def f():\n    return np.random.rand()  # emlint: disable=R1\n"
        )
        assert _rule_ids(active) == ["R4"] and not suppressed

    def test_multi_rule_directive(self):
        active, suppressed = _lint(
            "def f(m):\n"
            "    return sort_records(m.file.to_numpy())"
            "  # emlint: disable=R2, R3, R6\n"
        )
        assert not active
        assert sorted(_rule_ids(suppressed)) == ["R2", "R3", "R6"]

    def test_project_rule_findings_respect_suppressions(self):
        active, suppressed = _lint(
            "def f(machine):\n"
            '    with machine.phase("a/b"):  # emlint: disable=R9\n'
            "        pass\n"
        )
        assert not active and _rule_ids(suppressed) == ["R9"]


class TestSuppressionEdgeCases:
    """Directives must be *comments* — not string content — and must
    tolerate odd spelling."""

    def test_directive_inside_string_is_not_a_suppression(self):
        active, suppressed = _lint(
            'def f():\n'
            '    return np.random.rand(), "# emlint: disable=R4"\n'
        )
        assert _rule_ids(active) == ["R4"] and not suppressed

    def test_directive_inside_fstring_is_not_a_suppression(self):
        active, suppressed = _lint(
            'def f(x):\n'
            '    return np.random.rand(), f"{x} # emlint: disable=R4"\n'
        )
        assert _rule_ids(active) == ["R4"] and not suppressed

    def test_directive_inside_multiline_string_is_inert(self):
        active, suppressed = _lint(
            'DOC = """\n'
            "# emlint: disable=R4\n"
            '"""\n'
            "def f():\n"
            "    return np.random.rand()\n"
        )
        assert _rule_ids(active) == ["R4"] and not suppressed

    def test_odd_whitespace_and_multiple_rules(self):
        active, suppressed = _lint(
            "def f():\n"
            "    return np.random.rand()  #emlint:   disable=R1 ,R4,  R2\n"
        )
        assert not active and _rule_ids(suppressed) == ["R4"]

    def test_lowercase_rule_id_in_directive(self):
        active, suppressed = _lint(
            "def f():\n    return np.random.rand()  # emlint: disable=r4\n"
        )
        assert not active and _rule_ids(suppressed) == ["R4"]

    def test_crlf_line_endings(self):
        src = (
            "def f():\r\n"
            "    return np.random.rand()  # emlint: disable=R4\r\n"
        )
        active, suppressed = lint_source(src, ALG_PATH)
        assert not active and _rule_ids(suppressed) == ["R4"]

    def test_crlf_without_directive_still_finds(self):
        src = "def f():\r\n    return np.random.rand()\r\n"
        active, _ = lint_source(src, ALG_PATH)
        assert _rule_ids(active) == ["R4"]

    def test_syntax_findings_are_never_suppressable(self):
        active, suppressed = _lint("def f(:  # emlint: disable\n")
        assert _rule_ids(active) == ["SYNTAX"] and not suppressed

    def test_syntax_unsuppressable_survives_runner_and_cache(self, tmp_path):
        bad = tmp_path / "repro" / "alg" / "broken.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(:  # emlint: disable\n")
        cache = tmp_path / "cache.json"
        for _ in range(2):  # second pass serves the finding from cache
            report = lint_paths([bad], root=tmp_path, cache_path=cache)
            assert _rule_ids(report.findings) == ["SYNTAX"]
            assert not report.suppressed


class TestAnalysisCache:
    def _tree(self, tmp_path, body):
        f = tmp_path / "repro" / "alg" / "mod.py"
        f.parent.mkdir(parents=True, exist_ok=True)
        f.write_text(body)
        return f

    def test_warm_run_identical_and_hits(self, tmp_path):
        f = self._tree(tmp_path, "def f(m):\n    return m.disk.peek(0)\n")
        cache = tmp_path / "cache.json"
        r1 = lint_paths([f], root=tmp_path, cache_path=cache)
        r2 = lint_paths([f], root=tmp_path, cache_path=cache)
        assert r1.to_dict()["findings"] == r2.to_dict()["findings"]
        assert r2.cache_stats == {"hits": 1, "misses": 0}

    def test_edit_invalidates_by_content(self, tmp_path):
        f = self._tree(tmp_path, "def f(m):\n    return m.disk.peek(0)\n")
        cache = tmp_path / "cache.json"
        r1 = lint_paths([f], root=tmp_path, cache_path=cache)
        assert _rule_ids(r1.findings) == ["R2"]
        self._tree(tmp_path, "def f(m):\n    return 1\n")
        r2 = lint_paths([f], root=tmp_path, cache_path=cache)
        assert r2.cache_stats["misses"] == 1
        assert not r2.findings

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        f = self._tree(tmp_path, "def f(m):\n    return m.disk.peek(0)\n")
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = lint_paths([f], root=tmp_path, cache_path=cache)
        assert _rule_ids(report.findings) == ["R2"]

    def test_no_cache_mode(self, tmp_path):
        f = self._tree(tmp_path, "def f(m):\n    return m.disk.peek(0)\n")
        report = lint_paths([f], root=tmp_path, use_cache=False)
        assert _rule_ids(report.findings) == ["R2"]
        assert report.cache_stats == {"hits": 0, "misses": 1}


class TestDiffAndBaseline:
    def test_git_changed_files_runs_against_head(self):
        changed = git_changed_files("HEAD")
        if changed is None:
            pytest.skip("git not available")
        assert isinstance(changed, list)

    def test_unknown_ref_returns_none(self):
        assert git_changed_files("no-such-ref-xyz") is None

    def test_baseline_delta_drops_known_findings(self):
        old = LintFinding(
            path="repro/a.py", line=3, col=0, rule="R2", message="known"
        )
        new = LintFinding(
            path="repro/b.py", line=9, col=0, rule="R4", message="fresh"
        )
        report = LintReport(findings=[old, new], files=2, rules=["R2", "R4"])
        baseline = {"findings": [old.to_dict()]}
        delta = baseline_delta(report, baseline)
        assert [f.message for f in delta.findings] == ["fresh"]

    def test_baseline_delta_is_line_insensitive(self):
        # an edit above a pre-existing finding shifts its line; it must
        # not resurface as new.
        old = LintFinding(
            path="repro/a.py", line=3, col=0, rule="R2", message="known"
        )
        moved = LintFinding(
            path="repro/a.py", line=30, col=0, rule="R2", message="known"
        )
        report = LintReport(findings=[moved], files=1, rules=["R2"])
        delta = baseline_delta(report, {"findings": [old.to_dict()]})
        assert not delta.findings

    def test_only_paths_accepts_git_style_repo_relative_paths(self):
        # `--diff` feeds git's repo-root-relative names ("src/repro/...")
        # while findings use lint-root-relative names ("repro/...");
        # both must select the file.
        for spelling in (
            "src/repro/alg/distribute.py",
            "repro/alg/distribute.py",
        ):
            report = lint_paths(only_paths=[spelling])
            assert {f.rule for f in report.suppressed} == {"R3"}, spelling

    def test_only_paths_restricts_reporting(self, tmp_path):
        a = tmp_path / "repro" / "alg" / "a.py"
        a.parent.mkdir(parents=True)
        a.write_text("def f(m):\n    return m.disk.peek(0)\n")
        b = a.parent / "b.py"
        b.write_text("def g():\n    return np.random.rand()\n")
        full = lint_paths([a, b], root=tmp_path, use_cache=False)
        assert sorted(_rule_ids(full.findings)) == ["R2", "R4"]
        only = lint_paths(
            [a, b], root=tmp_path, use_cache=False,
            only_paths=["repro/alg/b.py"],
        )
        assert _rule_ids(only.findings) == ["R4"]


class TestFindingsAndReports:
    def test_finding_render_format(self):
        f = LintFinding(path="repro/x.py", line=3, col=4, rule="R2", message="m")
        assert f.render() == "repro/x.py:3:4: R2 [error] m"

    def test_finding_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            LintFinding(
                path="x.py", line=1, col=0, rule="R1", message="m",
                severity="fatal",
            )

    def test_rule_selection_is_respected(self):
        src = """
            def f(m):
                m.disk.peek(0)
                np.random.rand()
            """
        assert _rule_ids(_active(src, rules=get_rules(["R4"]))) == ["R4"]

    def test_syntax_error_reported_as_finding(self):
        active, _ = _lint("def f(:\n")
        assert active and active[0].rule == "SYNTAX"

    def test_report_json_round_trips(self, tmp_path):
        bad = tmp_path / "repro" / "alg" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(m):\n    return m.disk.peek(0)\n")
        report = lint_paths([bad], root=tmp_path, use_cache=False)
        assert not report.ok and report.files == 1
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "R2"
        assert payload["findings"][0]["path"] == "repro/alg/bad.py"
        assert "callgraph" in payload and "cache" in payload


class TestRepoGate:
    def test_repo_is_lint_clean(self):
        # The CI gate, runnable as a plain test: the package's own
        # source (plus scripts/ and benchmarks/) has no active findings
        # under every rule.
        report = lint_paths()
        assert report.files > 50
        assert report.findings == [], "\n" + report.render()

    def test_repo_suppressions_are_justified(self):
        # Every committed suppression is one we placed deliberately;
        # this pins the per-rule budget so new ones show up in review.
        # The v2 dataflow engine retired the R3 suppressions in
        # selection.py (callers charge cmp_median5) — the budget must
        # only ever shrink.
        report = lint_paths()
        by_rule = Counter(f.rule for f in report.suppressed)
        assert dict(by_rule) == {
            "R2": 3,  # documented uncounted verification reads
            "R3": 1,  # bucket_indices: exported API, callers charge
            "R5": 2,  # cli sanitize-check deliberate trap fixtures
            "R6": 1,  # _group_medians remainder: no machine in scope
            "R7": 2,  # worker reading its own disk via a local alias
        }
        assert len(report.suppressed) == 9

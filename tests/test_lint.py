"""AST lint engine tests: one positive and one negative fixture per
rule, suppression directives, rule selection, report output, and the
repo-wide gate itself.  R7 (shard isolation) fixtures live with the
subsystem they guard, in ``tests/test_shard.py``.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import (
    ALGORITHM_SUBSYSTEMS,
    EM_LAYER_SUBSYSTEMS,
    LintFinding,
    all_rules,
    get_rules,
    lint_paths,
    lint_source,
)

ALG_PATH = "repro/alg/fixture.py"


def _lint(src: str, relpath: str = ALG_PATH, rules=None):
    return lint_source(textwrap.dedent(src), relpath, rules)


def _active(src: str, relpath: str = ALG_PATH, rules=None):
    return _lint(src, relpath, rules)[0]


def _rule_ids(findings):
    return [f.rule for f in findings]


class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert [r.rule_id for r in all_rules()] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7",
        ]

    def test_get_rules_subset_and_case(self):
        assert [r.rule_id for r in get_rules(["r3", "R1"])] == ["R3", "R1"]

    def test_get_rules_unknown_raises(self):
        with pytest.raises(KeyError, match="R9"):
            get_rules(["R9"])

    def test_rules_carry_rationales(self):
        for rule in all_rules():
            assert rule.title and len(rule.rationale) > 40

    def test_layer_constants(self):
        assert "alg" in ALGORITHM_SUBSYSTEMS and "em" in EM_LAYER_SUBSYSTEMS


class TestR1PrivateInternals:
    POSITIVE = """
        def f(machine):
            return len(machine.disk._blocks)
        """

    def test_positive(self):
        (finding,) = _active(self.POSITIVE)
        assert finding.rule == "R1"
        assert "_blocks" in finding.message

    def test_negative_in_em_layer(self):
        assert not _active(self.POSITIVE, "repro/em/helper.py")

    def test_negative_in_obs_layer(self):
        assert not _active(self.POSITIVE, "repro/obs/helper.py")

    def test_negative_self_attribute(self):
        src = """
            class Thing:
                def f(self):
                    return self._peak
            """
        assert not _active(src)

    def test_flags_accountant_internals(self):
        src = """
            def f(machine):
                machine.memory._in_use = 0
            """
        assert _rule_ids(_active(src)) == ["R1"]


class TestR2UncountedEscapes:
    def test_positive_peek(self):
        (finding,) = _active("def f(m):\n    return m.disk.peek(0)\n")
        assert finding.rule == "R2" and "peek" in finding.message

    def test_positive_uncounted(self):
        src = """
            def f(machine):
                with machine.uncounted():
                    pass
            """
        assert _rule_ids(_active(src)) == ["R2"]

    def test_positive_default_to_numpy(self):
        (finding,) = _active("def f(file):\n    return file.to_numpy()\n")
        assert finding.rule == "R2" and "counted=True" in finding.message

    def test_negative_counted_to_numpy(self):
        assert not _active("def f(file):\n    return file.to_numpy(counted=True)\n")

    def test_negative_outside_algorithm_layer(self):
        src = "def f(m):\n    return m.disk.peek(0)\n"
        assert not _active(src, "repro/obs/probe.py")
        assert not _active(src, "repro/workloads/gen.py")


class TestR3RawComparisons:
    def test_positive_np_sort_on_records(self):
        src = """
            def f(records):
                return np.sort(composite(records))
            """
        (finding,) = _active(src)
        assert finding.rule == "R3" and "np.sort" in finding.message

    def test_positive_sort_records_helper(self):
        # R6 (kernel bypass) fires on the same call; check R3 is there.
        findings = _active("def f(r):\n    return sort_records(r)\n")
        assert sorted(_rule_ids(findings)) == ["R3", "R6"]

    def test_positive_raw_compare_on_keys(self):
        src = """
            def f(a, b):
                return a["key"] < b["key"]
            """
        (finding,) = _active(src)
        assert finding.rule == "R3" and "raw order comparison" in finding.message

    def test_negative_charged_function(self):
        src = """
            def f(machine, records):
                cmp_sort(machine, len(records))
                return np.sort(composite(records))
            """
        assert not _active(src)

    def test_negative_non_record_sort(self):
        # Index bookkeeping is free in the model; only record
        # comparisons are counted.
        assert not _active("def f(idx):\n    return np.sort(idx)\n")

    def test_negative_outside_algorithm_layer(self):
        src = "def f(r):\n    return sort_records(r)\n"
        assert not _active(src, "repro/workloads/gen.py")


class TestR4UnseededRng:
    def test_positive_stdlib_random(self):
        (finding,) = _active("def f():\n    return random.random()\n")
        assert finding.rule == "R4" and "global RNG" in finding.message

    def test_positive_legacy_np_random(self):
        (finding,) = _active("def f():\n    return np.random.rand(3)\n")
        assert finding.rule == "R4"

    def test_positive_unseeded_default_rng(self):
        (finding,) = _active("def f():\n    return np.random.default_rng()\n")
        assert "seed" in finding.message

    def test_negative_seeded_default_rng(self):
        assert not _active("def f(seed):\n    return np.random.default_rng(seed)\n")

    def test_negative_seeded_random_class(self):
        assert not _active("def f(seed):\n    return random.Random(seed)\n")

    def test_applies_everywhere_in_package(self):
        # Unlike R2/R3, reproducibility is global — em and obs too.
        src = "def f():\n    return np.random.rand()\n"
        assert _rule_ids(_active(src, "repro/em/helper.py")) == ["R4"]
        assert _rule_ids(_active(src, "repro/obs/helper.py")) == ["R4"]


class TestR5LeaseLifecycle:
    def test_positive_unprotected_assignment(self):
        src = """
            def f(machine):
                lease = machine.memory.lease(8, "x")
                work()
                lease.release()
            """
        (finding,) = _active(src)
        assert finding.rule == "R5" and "finally" in finding.message

    def test_positive_bare_call(self):
        (finding,) = _active("def f(m):\n    m.memory.lease(8, 'x')\n")
        assert finding.rule == "R5"

    def test_negative_with_statement(self):
        src = """
            def f(machine):
                with machine.memory.lease(8, "x"):
                    work()
            """
        assert not _active(src)

    def test_negative_try_finally(self):
        src = """
            def f(machine):
                lease = machine.memory.lease(8, "x")
                try:
                    work()
                finally:
                    lease.release()
            """
        assert not _active(src)

    def test_negative_later_with(self):
        src = """
            def f(machine):
                lease = machine.memory.lease(8, "x")
                with lease:
                    work()
            """
        assert not _active(src)

    def test_negative_attribute_storage(self):
        src = """
            class Index:
                def __init__(self, machine):
                    self._lease = machine.memory.lease(8, "idx")
            """
        assert not _active(src)

    def test_negative_in_tests(self):
        src = "def f(m):\n    m.memory.lease(8, 'x')\n"
        assert not _active(src, "repro/em/tests/test_x.py")


class TestR6KernelBypass:
    def test_positive_concat_records(self):
        (finding,) = _active(
            "def f(m, parts):\n    return concat_records(parts)\n",
            rules=get_rules(["R6"]),
        )
        assert finding.rule == "R6" and "machine.kernel.concat" in finding.message

    def test_positive_sort_records(self):
        (finding,) = _active(
            "def f(m, r):\n    return sort_records(r)\n", rules=get_rules(["R6"])
        )
        assert "sort_by_composite" in finding.message

    def test_positive_record_argpartition(self):
        (finding,) = _active(
            "def f(m, r, k):\n"
            "    return np.argpartition(composite(r), k)\n",
            rules=get_rules(["R6"]),
        )
        assert "rank_order" in finding.message

    def test_negative_plain_argpartition(self):
        # Index arithmetic is not record movement — no kernel needed.
        assert not _active(
            "def f(m, idx, k):\n    return np.argpartition(idx, k)\n",
            rules=get_rules(["R6"]),
        )

    def test_negative_kernel_dispatch(self):
        assert not _active(
            "def f(m, parts):\n    return m.kernel.concat(parts)\n",
            rules=get_rules(["R6"]),
        )

    def test_exempt_outside_algorithm_layer(self):
        src = "def f(r):\n    return sort_records(r)\n"
        assert not _active(src, "repro/em/kernels/numpy_v1.py", rules=get_rules(["R6"]))
        assert not _active(src, "repro/em/records.py", rules=get_rules(["R6"]))
        assert not _active(src, "tests/test_x.py", rules=get_rules(["R6"]))


class TestSuppression:
    def test_same_line_directive_suppresses(self):
        active, suppressed = _lint(
            "def f():\n    return np.random.rand()  # emlint: disable=R4\n"
        )
        assert not active
        assert _rule_ids(suppressed) == ["R4"]

    def test_bare_disable_suppresses_all_rules(self):
        active, suppressed = _lint(
            "def f(m):\n    return m.disk.peek(0)  # emlint: disable\n"
        )
        assert not active and _rule_ids(suppressed) == ["R2"]

    def test_directive_for_other_rule_does_not_suppress(self):
        active, suppressed = _lint(
            "def f():\n    return np.random.rand()  # emlint: disable=R1\n"
        )
        assert _rule_ids(active) == ["R4"] and not suppressed

    def test_multi_rule_directive(self):
        active, suppressed = _lint(
            "def f(m):\n"
            "    return sort_records(m.file.to_numpy())"
            "  # emlint: disable=R2, R3, R6\n"
        )
        assert not active
        assert sorted(_rule_ids(suppressed)) == ["R2", "R3", "R6"]


class TestFindingsAndReports:
    def test_finding_render_format(self):
        f = LintFinding(path="repro/x.py", line=3, col=4, rule="R2", message="m")
        assert f.render() == "repro/x.py:3:4: R2 [error] m"

    def test_finding_rejects_bad_severity(self):
        with pytest.raises(ValueError):
            LintFinding(
                path="x.py", line=1, col=0, rule="R1", message="m",
                severity="fatal",
            )

    def test_rule_selection_is_respected(self):
        src = """
            def f(m):
                m.disk.peek(0)
                np.random.rand()
            """
        assert _rule_ids(_active(src, rules=get_rules(["R4"]))) == ["R4"]

    def test_syntax_error_reported_as_finding(self):
        active, _ = _lint("def f(:\n")
        assert active and active[0].rule == "SYNTAX"

    def test_report_json_round_trips(self, tmp_path):
        bad = tmp_path / "repro" / "alg" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(m):\n    return m.disk.peek(0)\n")
        report = lint_paths([bad], root=tmp_path)
        assert not report.ok and report.files == 1
        payload = json.loads(report.to_json())
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "R2"
        assert payload["findings"][0]["path"] == "repro/alg/bad.py"
        assert "2 " not in report.render() or report.render()


class TestRepoGate:
    def test_repo_is_lint_clean(self):
        # The CI gate, runnable as a plain test: the package's own
        # source has no active findings under every rule.
        report = lint_paths()
        assert report.files > 50
        assert report.findings == [], "\n" + report.render()

    def test_repo_suppressions_are_justified(self):
        # Every committed suppression is one we placed deliberately;
        # this pins the count so new ones show up in review.
        report = lint_paths()
        assert len(report.suppressed) == 11

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.em import Machine, composite, make_records
from repro.workloads import load_input

# Derandomize hypothesis so the suite is bit-for-bit reproducible (the
# same policy the experiments follow with their fixed seeds).
settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")


@pytest.fixture
def small_machine() -> Machine:
    """A tiny machine (M=256, B=8) for fast exhaustive-ish tests."""
    return Machine(memory=256, block=8)


@pytest.fixture
def wide_machine() -> Machine:
    """The experiments' tall-cache machine (M=4096, B=64)."""
    return Machine(memory=4096, block=64)


@pytest.fixture
def narrow_machine() -> Machine:
    """The experiments' multi-pass machine (M=512, B=16)."""
    return Machine(memory=512, block=16)


def records_from_keys(keys, grps=0) -> np.ndarray:
    """Records with sequential uids from a plain key list."""
    return make_records(np.asarray(keys, dtype=np.int64), grps=grps)


def staged(machine: Machine, keys, grps=0):
    """Stage records with the given keys on the machine (uncounted)."""
    recs = records_from_keys(keys, grps)
    return recs, load_input(machine, recs)


def sorted_composites(records) -> np.ndarray:
    return np.sort(composite(records))

"""Tests for the service telemetry layer (repro.obs.metrics / .recorder).

Three groups:

* **Quantile math** — bucket boundaries, single samples, all-in-one-
  bucket interpolation, and merge associativity for :class:`Histogram`.
* **Registry / recorder plumbing** — idempotent getters, kind/label/
  bucket mismatch errors, the three exporters, ambient scoping, the
  null fallbacks, and the flight recorder's ring-buffer semantics.
* **Differential identity** — running the full service stack (lazy
  engine + frontend, updates, durability) inside a ``metrics_scope``
  must change *nothing* in the EM model: byte-identical answers and
  identical I/O, comparison, and peak-memory counters, across every
  registered kernel backend.
"""

import json

import numpy as np
import pytest

from repro.em import Machine, available_kernels
from repro.em.records import composite
from repro.obs import (
    DEFAULT_IO_BUCKETS,
    NULL_RECORDER,
    NULL_REGISTRY,
    FlightRecorder,
    Histogram,
    MetricsRegistry,
    current_recorder,
    current_registry,
    flight_scope,
    load_flight_dump,
    metrics_scope,
    render_flight_events,
)
from repro.service import LazyPartitionIndex, Query, QueryFrontend
from repro.workloads import load_input, random_permutation
from repro.workloads.queries import zipfian_trace

KERNELS = available_kernels()


# ---------------------------------------------------------------------
# Histogram quantile math
# ---------------------------------------------------------------------


class TestHistogramQuantiles:
    def test_bucket_boundary_values_are_exact(self):
        h = Histogram(buckets=(0, 1, 2, 4, 8))
        for v in (1, 2, 4, 8):
            h.observe(v)
        # Each value sits alone in its bucket, so every quantile is one
        # of the observed values, never an interpolation artifact.
        assert h.quantile(0.25) == 1
        assert h.quantile(0.5) == 2
        assert h.quantile(0.75) == 4
        assert h.quantile(1.0) == 8
        assert h.quantile(0.0) == 1  # rank clamps to 1
        assert h.count == 4 and h.sum == 15
        assert h.min == 1 and h.max == 8

    def test_single_sample_every_quantile(self):
        h = Histogram(buckets=(0, 1, 2, 4, 8))
        h.observe(3)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == 3

    def test_empty_histogram_quantile_is_zero(self):
        h = Histogram(buckets=(0, 1, 2))
        assert h.quantile(0.5) == 0.0
        assert h.count == 0 and h.sum == 0.0
        assert h.min == 0.0 and h.max == 0.0

    def test_all_in_one_bucket_interpolates_between_min_and_max(self):
        h = Histogram(buckets=(0, 1, 2, 4, 8))
        for v in (5, 6, 7):  # all land in the (4, 8] bucket
            h.observe(v)
        # Linear between the bucket's observed min (5) and max (7):
        # ranks 1, 2, 3 map to 5, 6, 7.
        assert h.quantile(0.5) == 6
        assert h.quantile(0.0) == 5
        assert h.quantile(1.0) == 7

    def test_constant_bucket_is_exact_not_interpolated(self):
        h = Histogram(buckets=(0, 10))
        h.observe(7, count=100)
        for q in (0.01, 0.5, 0.99):
            assert h.quantile(q) == 7

    def test_weighted_observe_matches_repeated_observe(self):
        a = Histogram(buckets=(0, 4, 16))
        b = Histogram(buckets=(0, 4, 16))
        for _ in range(5):
            a.observe(3)
        b.observe(3, count=5)
        assert a.to_dict() == b.to_dict()

    def test_observe_rejects_negative_count(self):
        h = Histogram(buckets=(0, 1))
        with pytest.raises(ValueError, match=">= 0"):
            h.observe(1, count=-1)
        h.observe(1, count=0)  # no-op, not an error
        assert h.count == 0

    def test_quantile_rejects_out_of_range(self):
        h = Histogram(buckets=(0, 1))
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(-0.1)

    def test_bounds_must_be_strictly_increasing_and_nonempty(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(0, 1, 1))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())

    def test_overflow_bucket_catches_values_past_last_bound(self):
        h = Histogram(buckets=(0, 1, 2))
        h.observe(1000)
        assert h.count == 1 and h.max == 1000
        assert h.quantile(0.5) == 1000
        assert h.to_dict()["buckets"] == {"+Inf": 1}

    def test_merge_is_associative_and_commutative(self):
        bounds = (0, 1, 2, 4, 8, 16)
        parts = []
        for seed in range(3):
            h = Histogram(buckets=bounds)
            rng = np.random.default_rng(seed)
            for v in rng.integers(0, 20, size=50):
                h.observe(int(v))
            parts.append(h)
        a, b, c = parts
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        swapped = c.merge(a).merge(b)
        assert left.to_dict() == right.to_dict() == swapped.to_dict()
        assert left.count == 150
        for q in (0.1, 0.5, 0.9, 0.99):
            assert left.quantile(q) == right.quantile(q) == swapped.quantile(q)

    def test_merge_rejects_different_buckets(self):
        with pytest.raises(ValueError, match="different buckets"):
            Histogram(buckets=(0, 1)).merge(Histogram(buckets=(0, 2)))

    def test_default_buckets_are_log_spaced_io_costs(self):
        h = Histogram()
        assert h.bounds == DEFAULT_IO_BUCKETS
        assert DEFAULT_IO_BUCKETS[0] == 0.0
        assert DEFAULT_IO_BUCKETS[-1] == float(2**20)


# ---------------------------------------------------------------------
# Registry plumbing
# ---------------------------------------------------------------------


class TestMetricsRegistry:
    def test_getters_are_idempotent(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help text")
        c.inc(3)
        assert reg.counter("x_total") is c
        assert reg.counter("x_total").value == 3
        g = reg.gauge("x_depth")
        assert reg.gauge("x_depth") is g
        fam = reg.histogram("x_io", labels=("engine",))
        assert reg.histogram("x_io", labels=("engine",)) is fam
        assert fam.labels(engine="lazy") is fam.labels(engine="lazy")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered as a"):
            reg.gauge("x")

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("op",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("x", labels=("kind",))

    def test_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(0, 1, 2))
        with pytest.raises(ValueError, match="different buckets"):
            reg.histogram("h", buckets=(0, 1, 4))
        # Omitting buckets on re-lookup is fine.
        reg.histogram("h").observe(1)

    def test_labels_require_exact_name_set(self):
        reg = MetricsRegistry()
        fam = reg.counter("x", labels=("op",))
        with pytest.raises(ValueError, match="takes labels"):
            fam.labels(kind="a")
        with pytest.raises(ValueError, match="takes labels"):
            fam.labels()

    def test_to_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(2)
        reg.gauge("g").set(1.5)
        fam = reg.counter("lab", labels=("op",))
        fam.labels(op="a").inc()
        fam.labels(op="b").inc(2)
        d = reg.to_dict()
        assert d["c_total"] == {"kind": "counter", "help": "a counter",
                                "value": 2}
        assert d["g"]["value"] == 1.5
        assert d["lab"]["children"]["op=a"]["value"] == 1
        assert d["lab"]["children"]["op=b"]["value"] == 2
        json.dumps(d)  # must be JSON-serializable

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests").inc(5)
        h = reg.histogram("io", "io per op", buckets=(0, 1, 2))
        h.observe(1)
        h.observe(100)
        text = reg.to_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 5" in text
        # Cumulative le-buckets ending in +Inf == count.
        assert 'io_bucket{le="1"} 1' in text
        assert 'io_bucket{le="+Inf"} 2' in text
        assert "io_count 2" in text
        assert "io_sum 101" in text

    def test_render_alignment_and_empty_stub(self):
        reg = MetricsRegistry()
        assert reg.render() == "(no metrics recorded)"
        reg.counter("a").inc()
        reg.counter("much_longer_name").inc(2)
        lines = reg.render().splitlines()
        assert len({line.index(":") for line in lines}) == 1

    def test_null_registry_absorbs_everything(self):
        c = NULL_REGISTRY.counter("x", labels=("op",))
        c.labels(op="a").inc(5)
        c.inc()
        h = NULL_REGISTRY.histogram("h")
        h.observe(3)
        assert h.quantile(0.5) == 0.0
        assert NULL_REGISTRY.to_dict() == {}
        assert NULL_REGISTRY.to_prometheus() == ""
        assert "no metrics" in NULL_REGISTRY.render()

    def test_metrics_scope_nesting_and_restore(self):
        assert current_registry() is NULL_REGISTRY
        with metrics_scope() as outer:
            assert current_registry() is outer
            inner_reg = MetricsRegistry()
            with metrics_scope(inner_reg) as inner:
                assert inner is inner_reg
                assert current_registry() is inner_reg
            assert current_registry() is outer
        assert current_registry() is NULL_REGISTRY

    def test_counter_rejects_negative_inc(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="Gauge"):
            reg.counter("c").inc(-1)


class TestFlightRecorder:
    def test_ring_buffer_evicts_oldest_and_counts_drops(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("tick", i=i)
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [e["i"] for e in rec.events] == [2, 3, 4]
        assert [e["seq"] for e in rec.events] == [2, 3, 4]

    def test_seq_is_recorder_owned_even_under_field_collision(self):
        rec = FlightRecorder()
        rec.record("wal-group", seq=99)
        ev = rec.events[0]
        assert ev["seq"] == 0
        assert ev["kind"] == "wal-group"

    def test_dump_load_roundtrip(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.record("snapshot", epoch=1)
        rec.record("update-flush", appended=3, completed=True)
        path = rec.dump(tmp_path / "sub" / "dump.json")
        doc = load_flight_dump(path)
        assert doc == rec.to_dict()
        text = render_flight_events(doc)
        assert "snapshot" in text and "appended=3" in text
        assert "2 recorded" in text

    def test_load_rejects_non_dump(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError, match="flight-recorder dump"):
            load_flight_dump(bad)

    def test_null_recorder_and_scope(self):
        assert current_recorder() is NULL_RECORDER
        NULL_RECORDER.record("ignored")
        assert NULL_RECORDER.to_dict()["events"] == []
        with pytest.raises(RuntimeError):
            NULL_RECORDER.dump("/nonexistent")
        with flight_scope() as rec:
            assert current_recorder() is rec
            rec.record("x")
        assert current_recorder() is NULL_RECORDER
        assert FlightRecorder().render() == "(no flight events recorded)"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            FlightRecorder(capacity=0)


# ---------------------------------------------------------------------
# Differential identity: telemetry changes nothing in the EM model
# ---------------------------------------------------------------------


def _run_service(kernel, with_metrics):
    """One fixed service workload; returns (fingerprint, registry)."""
    recs = random_permutation(20_000, seed=3)
    trace = zipfian_trace(200, 20_000, seed=5, alpha=1.2)
    mach = Machine(memory=4096, block=64, kernel=kernel)
    f = load_input(mach, recs)
    registry = MetricsRegistry() if with_metrics else None
    scope = metrics_scope(registry) if with_metrics else None
    if scope is not None:
        scope.__enter__()
    try:
        engine = LazyPartitionIndex(mach, f, k=32)
        frontend = QueryFrontend(mach, engine)
        answers = frontend.run(
            [Query.select(int(r)) for r in trace], batch=64
        )
    finally:
        if scope is not None:
            scope.__exit__(None, None, None)
    life = mach.disk.lifetime
    fingerprint = (
        life.reads,
        life.writes,
        frontend.total_io,
        frontend.total_comparisons,
        mach.memory.peak,
        composite(np.array(answers, dtype=recs.dtype)).tobytes(),
    )
    engine.close()
    f.free()
    return fingerprint, registry


@pytest.mark.parametrize("kernel", KERNELS)
def test_metrics_change_no_em_counters(kernel):
    bare, _ = _run_service(kernel, with_metrics=False)
    instrumented, registry = _run_service(kernel, with_metrics=True)
    assert instrumented == bare
    # ...and the telemetry actually recorded the workload: per-query
    # observations sum exactly to the frontend's total I/O.
    hist = registry.histogram(
        "svc_query_io", labels=("engine",)
    ).labels(engine="lazy")
    assert hist.count == 200
    assert hist.sum == pytest.approx(bare[2])


def test_metrics_identical_across_kernels():
    dicts = []
    for kernel in KERNELS:
        _, registry = _run_service(kernel, with_metrics=True)
        dicts.append(registry.to_dict())
    for other in dicts[1:]:
        assert other == dicts[0]

"""Tests for single-rank selection (BFPRT and fast bracket variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alg.selection import median_of_five_file, select_rank, select_rank_fast
from repro.em import Machine, SpecError, composite
from repro.em.records import make_records
from repro.workloads import few_distinct, load_input, random_permutation


def ground_truth(recs, rank):
    return int(np.sort(composite(recs))[rank - 1])


@pytest.mark.parametrize("select", [select_rank, select_rank_fast])
class TestBothVariants:
    @given(
        n=st.integers(1, 3000),
        seed=st.integers(0, 500),
        frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_ground_truth(self, select, n, seed, frac):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        rank = 1 + int(frac * (n - 1))
        got = select(mach, f, rank)
        assert int(composite(np.array([got]))[0]) == ground_truth(recs, rank)

    def test_extreme_ranks(self, select):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(2000, seed=19)
        f = load_input(mach, recs)
        lo = select(mach, f, 1)
        hi = select(mach, f, 2000)
        srt = np.sort(composite(recs))
        assert int(composite(np.array([lo]))[0]) == srt[0]
        assert int(composite(np.array([hi]))[0]) == srt[-1]

    def test_heavy_duplicates(self, select):
        mach = Machine(memory=128, block=8)
        recs = few_distinct(1500, seed=20, n_distinct=3)
        f = load_input(mach, recs)
        for rank in (1, 700, 1500):
            got = select(mach, f, rank)
            assert int(composite(np.array([got]))[0]) == ground_truth(recs, rank)

    def test_rank_out_of_range(self, select):
        mach = Machine(memory=128, block=8)
        f = load_input(mach, random_permutation(50, seed=21))
        with pytest.raises(SpecError):
            select(mach, f, 0)
        with pytest.raises(SpecError):
            select(mach, f, 51)

    def test_linear_io(self, select):
        mach = Machine(memory=256, block=8)
        n = 20_000
        f = load_input(mach, random_permutation(n, seed=22))
        mach.reset_counters()
        select(mach, f, n // 3)
        assert mach.io.total <= 12 * (n // 8)

    def test_no_leaks(self, select):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(5000, seed=23))
        select(mach, f, 2500)
        assert mach.memory.in_use == 0
        assert mach.disk.live_blocks == f.num_blocks

    def test_input_left_intact(self, select):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(500, seed=24)
        f = load_input(mach, recs)
        select(mach, f, 250)
        assert np.array_equal(f.to_numpy()["key"], recs["key"])


class TestFastIsFaster:
    def test_fast_beats_bfprt_on_large_inputs(self):
        m1 = Machine(memory=256, block=8)
        m2 = Machine(memory=256, block=8)
        recs = random_permutation(30_000, seed=25)
        f1, f2 = load_input(m1, recs), load_input(m2, recs)
        select_rank(m1, f1, 15_000)
        select_rank_fast(m2, f2, 15_000)
        assert m2.io.total < m1.io.total


class TestMedianOfFive:
    def test_sigma_size(self):
        mach = Machine(memory=128, block=8)
        f = load_input(mach, random_permutation(1000, seed=26))
        sigma = median_of_five_file(mach, f)
        # ceil over chunks: |Sigma| within [n/5, n/5 + #chunks].
        assert 200 <= len(sigma) <= 200 + 1000 // (mach.M - 2 * mach.B) + 1

    def test_sigma_elements_from_input(self):
        mach = Machine(memory=128, block=8)
        recs = random_permutation(500, seed=27)
        f = load_input(mach, recs)
        sigma = median_of_five_file(mach, f).to_numpy()
        assert set(composite(sigma).tolist()) <= set(composite(recs).tolist())

    def test_tiny_inputs(self):
        mach = Machine(memory=128, block=8)
        for n in (1, 2, 3, 4, 5, 6):
            recs = random_permutation(n, seed=n)
            f = load_input(mach, recs)
            sigma = median_of_five_file(mach, f)
            assert len(sigma) == -(-n // 5)

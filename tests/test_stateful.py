"""Stateful property tests of the simulator substrate.

Hypothesis drives random operation sequences against the memory
accountant and the disk, checking the core safety invariants after every
step: leased memory never exceeds M and is exactly the sum of live
leases; disk counters only grow while counting; block contents are
faithful; freed blocks are unreachable.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.em import Disk, MemoryBudgetError
from repro.em.machine import MemoryAccountant
from repro.em.records import make_records


class AccountantMachine(RuleBasedStateMachine):
    CAPACITY = 1000

    def __init__(self):
        super().__init__()
        self.acc = MemoryAccountant(self.CAPACITY)
        self.live = {}  # id -> lease
        self.next_id = 0

    @rule(size=st.integers(0, 600))
    def lease(self, size):
        if self.acc.in_use + size > self.CAPACITY:
            try:
                self.acc.lease(size)
                raise AssertionError("over-budget lease must fail")
            except MemoryBudgetError:
                return
        lease = self.acc.lease(size, f"l{self.next_id}")
        self.live[self.next_id] = lease
        self.next_id += 1

    @precondition(lambda self: self.live)
    @rule(which=st.integers(0, 10**6), new_size=st.integers(0, 600))
    def resize(self, which, new_size):
        key = sorted(self.live)[which % len(self.live)]
        lease = self.live[key]
        delta = new_size - lease.size
        if self.acc.in_use + delta > self.CAPACITY:
            try:
                lease.resize(new_size)
                raise AssertionError("over-budget resize must fail")
            except MemoryBudgetError:
                return
        lease.resize(new_size)

    @precondition(lambda self: self.live)
    @rule(which=st.integers(0, 10**6))
    def release(self, which):
        key = sorted(self.live)[which % len(self.live)]
        self.live.pop(key).release()

    @invariant()
    def in_use_matches_live_leases(self):
        assert self.acc.in_use == sum(l.size for l in self.live.values())
        assert 0 <= self.acc.in_use <= self.CAPACITY
        assert self.acc.peak >= self.acc.in_use


class DiskMachine(RuleBasedStateMachine):
    B = 8

    def __init__(self):
        super().__init__()
        self.disk = Disk(self.B)
        self.shadow = {}  # block id -> expected key list
        self.counting = True
        self.expected = [0, 0]  # reads, writes

    @rule(n=st.integers(1, 4))
    def allocate(self, n):
        for bid in self.disk.allocate(n):
            self.shadow[bid] = []

    @precondition(lambda self: self.shadow)
    @rule(which=st.integers(0, 10**6), size=st.integers(0, 8), seed=st.integers(0, 99))
    def write(self, which, size, seed):
        bid = sorted(self.shadow)[which % len(self.shadow)]
        keys = list(np.random.default_rng(seed).integers(0, 100, size))
        self.disk.write(bid, make_records(np.array(keys, dtype=np.int64)))
        self.shadow[bid] = keys
        if self.counting:
            self.expected[1] += 1

    @precondition(lambda self: self.shadow)
    @rule(which=st.integers(0, 10**6))
    def read(self, which):
        bid = sorted(self.shadow)[which % len(self.shadow)]
        got = self.disk.read(bid)
        assert list(got["key"]) == self.shadow[bid]
        if self.counting:
            self.expected[0] += 1

    @precondition(lambda self: len(self.shadow) > 1)
    @rule(which=st.integers(0, 10**6))
    def free(self, which):
        bid = sorted(self.shadow)[which % len(self.shadow)]
        self.disk.free([bid])
        del self.shadow[bid]

    @rule()
    def toggle_counting(self):
        # Model the uncounted() context by entering/exiting it atomically.
        self.counting = not self.counting
        self.disk._counting = self.counting  # direct toggle for the model

    @invariant()
    def counters_match_model(self):
        assert self.disk.counters.reads == self.expected[0]
        assert self.disk.counters.writes == self.expected[1]
        assert self.disk.live_blocks == len(self.shadow)
        assert self.disk.peak_blocks >= self.disk.live_blocks


TestAccountantStateful = AccountantMachine.TestCase
TestAccountantStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestDiskStateful = DiskMachine.TestCase
TestDiskStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)

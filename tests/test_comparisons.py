"""Tests for the comparison-count instrumentation (the model's CPU side)."""

import math

import numpy as np
import pytest

from repro.alg import external_sort, select_rank, select_rank_fast
from repro.core import intermixed_select, multi_select
from repro.em import Machine
from repro.em.comparisons import cmp_linear, cmp_median5, cmp_search, cmp_sort
from repro.em.records import make_records
from repro.workloads import load_input, random_permutation


class TestHelpers:
    def test_charges_accumulate_and_reset(self):
        mach = Machine(memory=64, block=8)
        cmp_linear(mach, 100)
        cmp_sort(mach, 16)  # 16*4 = 64
        cmp_search(mach, 10, 1024)  # 10*10 = 100
        cmp_median5(mach, 50)  # 6*10 = 60
        assert mach.comparisons == 100 + 64 + 100 + 60
        mach.reset_counters()
        assert mach.comparisons == 0

    def test_degenerate_charges_are_zero(self):
        mach = Machine(memory=64, block=8)
        cmp_linear(mach, 0)
        cmp_sort(mach, 1)
        cmp_search(mach, 0, 10)
        cmp_median5(mach, 0)
        assert mach.comparisons == 0

    def test_fractional_rounds_up(self):
        mach = Machine(memory=64, block=8)
        mach.charge_comparisons(0.25)
        assert mach.comparisons == 1


class TestAlgorithmShapes:
    N = 30_000

    def _mach_and_file(self, seed):
        mach = Machine(memory=4096, block=64)
        return mach, load_input(mach, random_permutation(self.N, seed=seed))

    def test_sort_comparisons_near_n_log_n(self):
        mach, f = self._mach_and_file(1)
        external_sort(mach, f)
        n_log_n = self.N * math.log2(self.N)
        assert 0.5 * n_log_n <= mach.comparisons <= 3 * n_log_n

    def test_selection_comparisons_linear(self):
        # BFPRT does O(N) comparisons — far below N log N.
        mach, f = self._mach_and_file(2)
        select_rank(mach, f, self.N // 2)
        assert mach.comparisons <= 30 * self.N
        mach2, f2 = self._mach_and_file(3)
        select_rank_fast(mach2, f2, self.N // 2)
        assert mach2.comparisons <= 30 * self.N

    def test_selection_variants_trade_cpu_for_io(self):
        # BFPRT: fewer comparisons than sorting.  The fast bracket variant
        # spends *more* comparisons (its high-oversample cascade re-sorts
        # chunks) to buy fewer I/Os — exactly the model's "CPU is free"
        # trade, now visible in the counters.
        mach, f = self._mach_and_file(4)
        external_sort(mach, f)
        sort_cmp = mach.comparisons

        mach_b, f_b = self._mach_and_file(5)
        select_rank(mach_b, f_b, self.N // 2)
        mach_f, f_f = self._mach_and_file(5)
        select_rank_fast(mach_f, f_f, self.N // 2)

        assert mach_b.comparisons < sort_cmp           # BFPRT: CPU-lean
        assert mach_f.io.total < mach_b.io.total       # fast: I/O-lean

    def test_intermixed_comparisons_linear_in_d(self):
        mach = Machine(memory=4096, block=64)
        rng = np.random.default_rng(6)
        L = 32
        grps = rng.integers(0, L, size=self.N)
        grps[:L] = np.arange(L)
        recs = make_records(rng.integers(0, 2**30, size=self.N), grps=grps)
        d = load_input(mach, recs)
        sizes = np.bincount(grps, minlength=L)
        t = rng.integers(1, sizes + 1)
        intermixed_select(mach, d, t)
        assert mach.comparisons <= 60 * self.N

    def test_multiselect_comparisons_below_full_sort_scaling(self):
        # Theorem 4's algorithm sorts only memory loads, so its per-element
        # comparison count is O(log M), not O(log N): grow N at fixed M and
        # the per-element count must stay ~flat.
        per_element = []
        for n in (20_000, 80_000):
            mach = Machine(memory=4096, block=64)
            f = load_input(mach, random_permutation(n, seed=7))
            multi_select(mach, f, np.linspace(1, n, 8).astype(np.int64))
            per_element.append(mach.comparisons / n)
        assert per_element[1] <= 1.5 * per_element[0]

"""Differential fuzzing: random machine shapes × workloads × parameters.

Every paper algorithm is run against the trivially-correct sort-based
route on the same randomized instance; answers must agree exactly
(multi-selection) or both satisfy the problem definition (splitters /
partitioning), on machines ranging from the practical minimum
``M = 5B`` to tall-cache shapes, with every workload family.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import (
    check_multiselect,
    check_partitioned,
    check_splitters,
)
from repro.baselines import sort_based_multiselect
from repro.core import (
    approximate_partition,
    approximate_splitters,
    multi_select,
)
from repro.em import Machine, composite
from repro.workloads import (
    few_distinct,
    random_permutation,
    reverse_sorted,
    sorted_keys,
    uniform_random,
    zipf_like,
    load_input,
)

GENERATORS = [
    random_permutation,
    uniform_random,
    sorted_keys,
    reverse_sorted,
    few_distinct,
    zipf_like,
]

machine_shapes = st.sampled_from(
    [(40, 8), (64, 8), (96, 16), (256, 8), (256, 16), (512, 16), (1024, 32)]
)


@st.composite
def instances(draw):
    m, b = draw(machine_shapes)
    n = draw(st.integers(max(2 * m, 50), 4000))
    gen = draw(st.sampled_from(GENERATORS))
    seed = draw(st.integers(0, 10_000))
    return m, b, n, gen, seed


class TestDifferential:
    @given(inst=instances(), k=st.integers(1, 40), seed2=st.integers(0, 99))
    @settings(max_examples=30, deadline=None)
    def test_multiselect_agrees_with_sort(self, inst, k, seed2):
        m, b, n, gen, seed = inst
        recs = gen(n, seed=seed)
        ranks = np.random.default_rng(seed2).integers(1, n + 1, size=k)

        mach1 = Machine(memory=m, block=b)
        f1 = load_input(mach1, recs)
        ours = multi_select(mach1, f1, ranks)

        mach2 = Machine(memory=m, block=b)
        f2 = load_input(mach2, recs)
        baseline = sort_based_multiselect(mach2, f2, ranks)

        assert np.array_equal(composite(ours), composite(baseline))
        check_multiselect(recs, ranks, ours)
        assert mach1.memory.peak <= m

    @given(
        inst=instances(),
        k_frac=st.floats(0.0, 1.0),
        a_frac=st.floats(0.0, 1.0),
        b_frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_splitters_and_partitioning_valid_everywhere(
        self, inst, k_frac, a_frac, b_frac
    ):
        m, b_blk, n, gen, seed = inst
        recs = gen(n, seed=seed)
        k = 1 + int(k_frac * (n - 1))
        a = int(a_frac * (n // k))
        bb_min = -(-n // k)
        bb = bb_min + int(b_frac * (n - bb_min))

        mach = Machine(memory=m, block=b_blk)
        f = load_input(mach, recs)
        res = approximate_splitters(mach, f, k, a, bb)
        check_splitters(recs, res.splitters, a, bb, k)
        assert mach.memory.peak <= m
        assert mach.memory.in_use == 0

        mach2 = Machine(memory=m, block=b_blk)
        f2 = load_input(mach2, recs)
        pf = approximate_partition(mach2, f2, k, a, bb)
        check_partitioned(recs, pf, a, bb, k)
        pf.free()
        assert mach2.disk.live_blocks == f2.num_blocks

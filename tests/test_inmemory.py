"""Tests for the in-memory multiple-selection engine (§1.2 reference [7])."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alg.inmemory import partition_at_ranks, select_at_ranks
from repro.em import Machine, composite
from repro.em.records import make_records


@pytest.fixture
def mach():
    return Machine(memory=256, block=8)


class TestPartitionAtRanks:
    @given(
        n=st.integers(0, 300),
        cuts=st.lists(st.integers(-5, 305), max_size=6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_ranges_grouped_correctly(self, n, cuts, seed):
        mach = Machine(memory=256, block=8)
        rng = np.random.default_rng(seed)
        recs = make_records(rng.integers(0, 50, size=n))
        grouped = partition_at_ranks(mach, recs, list(cuts))
        comps = composite(grouped)
        truth = np.sort(composite(recs))
        valid = sorted({c for c in cuts if 0 < c < n})
        prev = 0
        for c in valid + [n]:
            assert np.array_equal(np.sort(comps[prev:c]), truth[prev:c])
            prev = c

    def test_returns_copy(self, mach):
        recs = make_records(np.array([3, 1, 2]))
        out = partition_at_ranks(mach, recs, [1])
        out["key"][0] = 99
        assert recs["key"][0] == 3

    def test_no_valid_cuts_is_identity_multiset(self, mach):
        recs = make_records(np.array([3, 1, 2]))
        out = partition_at_ranks(mach, recs, [0, 3, 7])
        assert np.array_equal(np.sort(out["key"]), np.array([1, 2, 3]))

    def test_charges_n_log_k_comparisons(self, mach):
        recs = make_records(np.arange(1000))
        mach.reset_counters()
        partition_at_ranks(mach, recs, [100, 500, 900])
        assert mach.comparisons == 1000 * math.ceil(math.log2(4))


class TestSelectAtRanks:
    @given(
        n=st.integers(1, 300),
        k=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_sorted_truth(self, n, k, seed):
        mach = Machine(memory=256, block=8)
        rng = np.random.default_rng(seed)
        recs = make_records(rng.integers(0, 30, size=n))
        ranks = rng.integers(1, n + 1, size=k)
        got = composite(select_at_ranks(mach, recs, ranks))
        want = np.sort(composite(recs))[ranks - 1]
        assert np.array_equal(got, want)

    def test_duplicate_ranks_aligned(self, mach):
        recs = make_records(np.array([5, 1, 9, 3]))
        out = select_at_ranks(mach, recs, [2, 2, 4, 1])
        assert list(out["key"]) == [3, 3, 9, 1]

    def test_rank_validation(self, mach):
        recs = make_records(np.array([1, 2]))
        with pytest.raises(ValueError):
            select_at_ranks(mach, recs, [0])
        with pytest.raises(ValueError):
            select_at_ranks(mach, recs, [3])

    def test_empty_ranks(self, mach):
        recs = make_records(np.array([1, 2]))
        assert len(select_at_ranks(mach, recs, [])) == 0

    def test_comparisons_below_sort(self, mach):
        # n·lg k for k=2 is far below n·lg n for n=4096.
        recs = make_records(np.random.default_rng(1).permutation(4096))
        mach.reset_counters()
        select_at_ranks(mach, recs, [100, 3000])
        assert mach.comparisons <= 4096 * 2

"""Durability tests: exception-safe flush, WAL/snapshot crash recovery.

Three layers of coverage:

* **Flush semantics** — regression tests for the two ``DeltaBuffer``
  bugs fixed alongside the durability work: a ``SpecError`` from a
  missing-key delete no longer discards the remaining buffered
  operations or skips drift/rebalance accounting, and operations are
  applied in submission order (``delete k`` then ``append k`` no longer
  kills the new record).
* **Durable roundtrip** — a ``DurablePartitionIndex`` survives a clean
  process death (``abandon`` drops memory, keeps disk) and ``recover``
  rebuilds an index whose answers are element-identical.
* **Chaos sweep** — :func:`tests.test_failure_injection.arm_fault`
  kills the service at swept I/O offsets spanning flush, WAL append,
  snapshot write, and rebuild; every offset must leave zero leaked
  leases and a recoverable manifest whose recovered answers match an
  uncrashed shadow oracle that applied exactly the committed prefix of
  the update plan.
"""

import numpy as np
import pytest

from repro.em import Machine, SpecError
from repro.em.records import composite
from repro.service import DurablePartitionIndex, PartitionIndex, recover
from repro.workloads import load_input, random_permutation
from repro.workloads.queries import update_batches, zipfian_trace
from tests.test_failure_injection import InjectedFault, arm_fault


def _machine(sanitize=False):
    return Machine(memory=4096, block=64, sanitize=sanitize)


def _armed(mach, fail_at):
    """arm_fault wrapped with a disarm: restores the pristine disk
    methods so recovery never sees a leftover fault (an offset past the
    crash phase's total I/O then simply means "no crash happened")."""
    disk = mach.disk
    saved = (disk.read, disk.write, disk.read_many, disk.write_many)
    arm_fault(mach, fail_at)

    def disarm():
        disk.read, disk.write, disk.read_many, disk.write_many = saved

    return disarm


def _build_volatile(mach, recs, k=16, **kw):
    f = load_input(mach, recs)
    index = PartitionIndex.build(mach, f, k, **kw)
    f.free()
    return index


def _build_durable(mach, recs, k=16, **kw):
    f = load_input(mach, recs)
    index = DurablePartitionIndex.build_durable(mach, f, k, **kw)
    f.free()
    return index


def _apply_batch(index, batch) -> None:
    for op in batch:
        if op[0] == "append":
            index.append(op[1])
        else:
            index.delete(op[1])
    index.flush_updates()


def _live_keys(index):
    """Every live key, via a full rank sweep (exercises all partitions)."""
    return index.batch_select(np.arange(1, index.n_live + 1))["key"]


class TestFlushExceptionSafety:
    def test_failed_delete_keeps_remaining_ops(self):
        mach = _machine()
        recs = random_permutation(4096, seed=3)
        index = _build_volatile(mach, recs)
        index.append(np.array([10_000, 10_001], dtype=np.int64))
        index.delete(999_999)  # not present -> SpecError at flush
        index.append(np.array([10_002, 10_003], dtype=np.int64))
        with pytest.raises(SpecError):
            index.flush_updates()
        # The failing delete is dropped; everything after it survives
        # in the buffer and the next flush completes.
        index.flush_updates()
        keys = set(_live_keys(index).tolist())
        assert {10_000, 10_001, 10_002, 10_003} <= keys
        assert index.n_live == 4100
        index.check_invariants()
        index.close()

    def test_failed_flush_accounts_drift(self):
        mach = _machine()
        recs = random_permutation(4096, seed=4)
        index = _build_volatile(mach, recs)
        drift0 = index._drift
        index.append(np.array([20_000], dtype=np.int64))
        index.delete(999_999)
        with pytest.raises(SpecError):
            index.flush_updates()
        # The applied prefix (one append) must be drift-accounted even
        # though the flush raised.
        assert index._drift == drift0 + 1
        index.close()

    def test_ops_apply_in_submission_order(self):
        mach = _machine()
        recs = random_permutation(4096, seed=5)
        k = int(recs["key"][0])
        index = _build_volatile(mach, recs)
        # delete k, then append a new record with the same key: the old
        # uid must die and the new one survive (the old code applied
        # all appends first, so the delete killed the *new* record).
        index.delete(k)
        index.append(np.array([k], dtype=np.int64))
        index.flush_updates()
        assert index.n_live == 4096
        got = _live_keys(index)
        assert int((got == k).sum()) == 1
        # And the surviving uid is the fresh one (>= the initial count).
        sweep = index.batch_select(np.arange(1, index.n_live + 1))
        uid = int(sweep[sweep["key"] == k]["uid"][0])
        assert uid >= 4096
        index.close()

    def test_delete_before_append_of_absent_key_raises(self):
        mach = _machine()
        recs = random_permutation(4096, seed=6)
        index = _build_volatile(mach, recs)
        index.delete(777_777)  # nothing live with this key yet
        index.append(np.array([777_777], dtype=np.int64))
        with pytest.raises(SpecError):
            index.flush_updates()
        index.flush_updates()  # the append survives the failed delete
        assert index.n_live == 4097
        assert 777_777 in set(_live_keys(index).tolist())
        index.close()

    def test_interleaved_plan_matches_key_multiset_oracle(self):
        mach = _machine()
        recs = random_permutation(4096, seed=7)
        index = _build_volatile(mach, recs)
        plan = update_batches(recs["key"], 6, 40, 24, seed=7)
        oracle = recs["key"].tolist()
        for batch in plan:
            for op in batch:
                if op[0] == "append":
                    oracle.extend(int(x) for x in op[1])
                else:
                    oracle.remove(op[1])
            _apply_batch(index, [])  # flush nothing extra
            _apply_batch(index, batch)
        assert np.array_equal(np.sort(_live_keys(index)), np.sort(oracle))
        index.check_invariants()
        index.close()


class TestDurableRoundtrip:
    def test_clean_death_and_recover_identical(self):
        mach = _machine(sanitize=True)
        recs = random_permutation(8192, seed=11)
        index = _build_durable(mach, recs, snapshot_every=3)
        plan = update_batches(recs["key"], 6, 40, 12, seed=11)
        for batch in plan:
            _apply_batch(index, batch)
        assert index.applied_seq == 6
        trace = zipfian_trace(512, index.n_live, seed=12)
        want = composite(index.batch_select(trace))
        manifest = index.manifest_block
        index.abandon()
        assert mach.memory.in_use == 0
        rec = recover(mach, manifest)
        assert rec.applied_seq == 6
        got = composite(rec.batch_select(trace))
        assert np.array_equal(got, want)
        rec.check_invariants()
        rec.destroy()
        assert mach.memory.in_use == 0
        assert mach.disk.live_blocks == 0
        mach.close()

    def test_close_snapshots_and_keeps_disk(self):
        mach = _machine(sanitize=True)
        recs = random_permutation(4096, seed=13)
        index = _build_durable(mach, recs)
        index.append(np.array([50_000, 50_001], dtype=np.int64))
        manifest = index.manifest_block
        index.close()  # flushes the pending delta, snapshots, abandons
        assert mach.memory.in_use == 0
        rec = recover(mach, manifest)
        assert 50_000 in set(_live_keys(rec).tolist())
        assert rec.n_live == 4098
        rec.destroy()
        mach.close()

    def test_wal_full_subsumed_by_snapshot(self):
        mach = _machine(sanitize=True)
        recs = random_permutation(4096, seed=14)
        # One WAL block holds B-1 = 63 entries; a 64-op group (plus its
        # commit entry) cannot fit, so the flush must fall back to a
        # full snapshot that subsumes the group.
        index = _build_durable(mach, recs, wal_capacity=1,
                               snapshot_every=1000)
        snaps0 = index.durability_stats()["snapshots"]
        index.append(np.arange(60_000, 60_064, dtype=np.int64))
        index.flush_updates()
        assert index.applied_seq == 1
        assert index.durability_stats()["snapshots"] == snaps0 + 1
        manifest = index.manifest_block
        index.abandon()
        rec = recover(mach, manifest)
        assert rec.applied_seq == 1
        assert rec.n_live == 4160
        rec.destroy()
        mach.close()

    def test_snapshot_cadence(self):
        mach = _machine()
        recs = random_permutation(4096, seed=15)
        index = _build_durable(mach, recs, snapshot_every=2)
        snaps0 = index.durability_stats()["snapshots"]
        for i in range(4):
            index.append(np.array([70_000 + i], dtype=np.int64))
            index.flush_updates()
        # Four committed groups with snapshot_every=2 -> two more
        # snapshots past the build-time one.
        assert index.durability_stats()["snapshots"] == snaps0 + 2
        index.destroy()


def _shadow_answers(recs, plan, seq, trace, k=16, **kw):
    """Answers of an uncrashed volatile index that applied plan[:seq]."""
    mach = _machine()
    shadow = _build_volatile(mach, recs, k=k, **kw)
    for batch in plan[:seq]:
        _apply_batch(shadow, batch)
    n_live = shadow.n_live
    ans = composite(shadow.batch_select(trace))
    shadow.close()
    return n_live, ans


class TestChaosSweep:
    # Offsets chosen to land in the build-time snapshot tail, the first
    # WAL append, mid-flush partition rewrites, later snapshots, and
    # (for the churn case) the drift-triggered rebuild.
    OFFSETS = [1, 3, 9, 17, 33, 57, 101, 160, 241, 333, 480]

    @pytest.mark.parametrize("fail_at", OFFSETS)
    def test_kill_at_io_then_recover_identical(self, fail_at):
        mach = _machine(sanitize=True)
        recs = random_permutation(4096, seed=21)
        index = _build_durable(mach, recs, snapshot_every=3)
        plan = update_batches(recs["key"], 8, 40, 16, seed=21)
        disarm = _armed(mach, fail_at)
        try:
            for batch in plan:
                _apply_batch(index, batch)
        except InjectedFault:
            pass
        disarm()
        manifest = index.manifest_block
        index.abandon()
        assert mach.memory.in_use == 0, (
            f"crash at I/O #{fail_at} leaked "
            f"{mach.memory.in_use} leased records"
        )
        rec = recover(mach, manifest)
        seq = rec.applied_seq
        assert 0 <= seq <= len(plan)
        trace = zipfian_trace(256, rec.n_live, seed=22)
        n_live, want = _shadow_answers(recs, plan, seq, trace)
        assert rec.n_live == n_live
        assert np.array_equal(composite(rec.batch_select(trace)), want)
        rec.check_invariants()
        rec.destroy()
        mach.close()

    @pytest.mark.parametrize("fail_at", [5, 29, 61, 140, 260])
    def test_kill_during_rebuild_churn(self, fail_at):
        # A tiny rebuild threshold makes nearly every flush trigger a
        # full rebuild, so faults land inside sort/scan/snapshot of the
        # rebuild path as well.
        mach = _machine(sanitize=True)
        recs = random_permutation(2048, seed=23)
        index = _build_durable(mach, recs, snapshot_every=2,
                               rebuild_threshold=0.01)
        plan = update_batches(recs["key"], 5, 32, 16, seed=23)
        disarm = _armed(mach, fail_at)
        try:
            for batch in plan:
                _apply_batch(index, batch)
        except InjectedFault:
            pass
        disarm()
        manifest = index.manifest_block
        index.abandon()
        assert mach.memory.in_use == 0
        rec = recover(mach, manifest)
        seq = rec.applied_seq
        trace = zipfian_trace(256, rec.n_live, seed=24)
        n_live, want = _shadow_answers(recs, plan, seq, trace,
                                       rebuild_threshold=0.01)
        assert rec.n_live == n_live
        assert np.array_equal(composite(rec.batch_select(trace)), want)
        rec.destroy()
        mach.close()

    @pytest.mark.parametrize("fail_at", [1, 2, 4, 7])
    def test_kill_during_explicit_snapshot(self, fail_at):
        mach = _machine(sanitize=True)
        recs = random_permutation(4096, seed=25)
        index = _build_durable(mach, recs, snapshot_every=1000)
        index.append(np.array([80_000, 80_001], dtype=np.int64))
        index.flush_updates()
        want_live = index.n_live
        disarm = _armed(mach, fail_at)
        try:
            index.snapshot()
        except InjectedFault:
            pass
        disarm()
        manifest = index.manifest_block
        index.abandon()
        assert mach.memory.in_use == 0
        rec = recover(mach, manifest)
        # Whether or not the snapshot landed, the committed group must
        # survive (either via the old snapshot + WAL or the new one).
        assert rec.applied_seq == 1
        assert rec.n_live == want_live
        rec.destroy()
        mach.close()


class TestRecoverCLI:
    @pytest.mark.parametrize("fail_at", [0, 37, 200])
    def test_recover_verb_reports_identity(self, fail_at, capsys):
        from repro.cli import main

        rc = main([
            "recover", "--n", "4096", "--k", "16", "--batches", "4",
            "--batch-ops", "32", "--queries", "128",
            "--fail-at", str(fail_at),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "element-identical" in out

"""Tests for the application layer (histograms, load balancing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_histogram, plan_shards
from repro.em import Machine, SpecError
from repro.workloads import load_input, uniform_random, zipf_like


class TestHistogram:
    def _build(self, n=8000, k=16, slack=0.0, seed=100, gen=uniform_random):
        mach = Machine(memory=4096, block=64)
        recs = gen(n, seed=seed)
        f = load_input(mach, recs)
        hist = build_histogram(mach, f, k, slack=slack)
        return mach, recs, hist

    def test_exact_histogram_bucket_count(self):
        _, _, hist = self._build()
        assert hist.num_buckets == 16

    def test_rank_bounds_contain_truth(self):
        _, recs, hist = self._build(slack=0.25)
        keys = np.sort(recs["key"])
        for probe in [keys[0], keys[len(keys) // 3], keys[-1], -1, 10**7]:
            true_rank = int(np.searchsorted(keys, probe, side="right"))
            lo, hi = hist.rank_bounds(int(probe))
            # The bounds are certain — no duplicate-key smear allowance.
            assert lo <= true_rank <= hi

    def test_rank_bounds_certain_on_every_key(self):
        """The bounds hold for *every* data key, including duplicates of
        bucket-boundary values (the historical off-by-one)."""
        _, recs, hist = self._build(slack=0.25, gen=zipf_like)
        keys = np.sort(recs["key"])
        for probe in np.unique(keys):
            true_rank = int(np.searchsorted(keys, probe, side="right"))
            lo, hi = hist.rank_bounds(int(probe))
            assert lo <= true_rank <= hi, f"key {probe}"

    def test_rank_estimate_within_error(self):
        _, recs, hist = self._build(slack=0.0)
        keys = np.sort(recs["key"])
        err = hist.max_rank_error() + hist.b  # duplicate-key smear
        rng = np.random.default_rng(5)
        for probe in rng.choice(keys, size=20):
            true_rank = int(np.searchsorted(keys, probe, side="right"))
            assert abs(hist.rank_estimate(int(probe)) - true_rank) <= err

    def test_selectivity_bounds(self):
        _, recs, hist = self._build(slack=0.25)
        keys = np.sort(recs["key"])
        lo_key, hi_key = int(keys[1000]), int(keys[5000])
        true_sel = (5000 - 1000) / len(keys)
        s_lo, s_hi = hist.selectivity_bounds(lo_key, hi_key)
        slack_frac = 2 * hist.b / hist.n
        assert s_lo - slack_frac <= true_sel <= s_hi + slack_frac

    def test_selectivity_rejects_empty_range(self):
        _, _, hist = self._build()
        with pytest.raises(SpecError):
            hist.selectivity_bounds(10, 5)

    def test_rank_bounds_boundary_duplicate_spill(self):
        """Duplicates of a boundary key spilling into the next bucket.

        Keys ``1,1,1,5,5,5,5,5,9`` with exact thirds put boundaries at
        ``[1, 5]``, yet five copies of the boundary key 5 reach rank 8 —
        past its own bucket.  The old ``side="left"`` boundary count
        capped ``hi`` at 6 here, excluding the true rank.
        """
        from repro.em import make_records

        mach = Machine(memory=4096, block=64)
        keys = np.array([1, 1, 1, 5, 5, 5, 5, 5, 9], dtype=np.int64)
        rng = np.random.default_rng(3)
        recs = make_records(rng.permutation(keys))
        f = load_input(mach, recs)
        hist = build_histogram(mach, f, 3, slack=0.0)
        assert list(hist.boundaries) == [1, 5]
        sorted_keys = np.sort(keys)
        for probe in [0, 1, 2, 5, 6, 9, 10]:
            true_rank = int(np.searchsorted(sorted_keys, probe, side="right"))
            lo, hi = hist.rank_bounds(probe)
            assert lo <= true_rank <= hi, f"key {probe}"
        # Selectivity inherits the fix: (1, 5] really holds 5 of 9.
        s_lo, s_hi = hist.selectivity_bounds(1, 5)
        assert s_lo <= 5 / 9 <= s_hi

    def test_skewed_data(self):
        _, recs, hist = self._build(gen=zipf_like, slack=0.5)
        assert hist.num_buckets == 16

    @given(slack=st.floats(0.0, 2.0), k=st.integers(2, 64))
    @settings(max_examples=10, deadline=None)
    def test_histogram_always_valid(self, slack, k):
        mach = Machine(memory=4096, block=64)
        recs = uniform_random(4000, seed=3)
        f = load_input(mach, recs)
        hist = build_histogram(mach, f, k, slack=slack)
        assert hist.num_buckets == k
        assert 0 <= hist.a <= 4000 / k <= hist.b

    def test_sublinear_sampling_mode(self):
        mach = Machine(memory=4096, block=64)
        n = 100_000
        f = load_input(mach, uniform_random(n, seed=4))
        mach.reset_counters()
        build_histogram(mach, f, 32, sample_fraction=0.05)
        assert mach.io.total < n // 64  # strictly below one scan

    def test_sampling_mode_nominal_accuracy(self):
        # On a randomly ordered input the prefix is a uniform sample, so
        # the nominal rank estimates land within a few bucket widths.
        mach = Machine(memory=4096, block=64)
        n, k = 100_000, 32
        recs = uniform_random(n, seed=12)
        f = load_input(mach, recs)
        hist = build_histogram(mach, f, k, sample_fraction=0.1)
        keys = np.sort(recs["key"])
        rng = np.random.default_rng(13)
        errs = []
        for p in rng.choice(keys, size=100):
            true_rank = int(np.searchsorted(keys, p, side="right"))
            errs.append(abs(hist.rank_estimate(int(p)) - true_rank))
        assert np.percentile(errs, 90) <= 3 * n / k

    def test_selectivity_estimate(self):
        mach = Machine(memory=4096, block=64)
        n = 50_000
        recs = uniform_random(n, seed=14)
        f = load_input(mach, recs)
        hist = build_histogram(mach, f, 64, slack=0.0)
        keys = np.sort(recs["key"])
        lo, hi = int(keys[n // 5]), int(keys[3 * n // 5])
        est = hist.selectivity_estimate(lo, hi)
        assert abs(est - 0.4) <= 0.1

    def test_invalid_params(self):
        mach = Machine(memory=4096, block=64)
        f = load_input(mach, uniform_random(100, seed=5))
        with pytest.raises(SpecError):
            build_histogram(mach, f, 0)
        with pytest.raises(SpecError):
            build_histogram(mach, f, 4, slack=-0.1)
        with pytest.raises(SpecError):
            build_histogram(mach, f, 4, sample_fraction=0.0)
        with pytest.raises(SpecError):
            build_histogram(mach, f, 4, sample_fraction=1.5)


class TestLoadBalance:
    def test_perfect_balance(self):
        mach = Machine(memory=4096, block=64)
        recs = uniform_random(8000, seed=6)
        f = load_input(mach, recs)
        plan = plan_shards(mach, f, 8, slack=0.0)
        assert plan.num_workers == 8
        assert plan.imbalance == pytest.approx(1.0)
        assert plan.utilization == pytest.approx(1.0)
        plan.free()

    def test_slack_respected(self):
        mach = Machine(memory=4096, block=64)
        n, k = 8000, 8
        recs = uniform_random(n, seed=7)
        f = load_input(mach, recs)
        plan = plan_shards(mach, f, k, slack=0.5)
        per = n / k
        assert all(0.5 * per <= s <= 1.5 * per + 1 for s in plan.shard_sizes)
        assert plan.imbalance <= 1.5 + 1e-9
        plan.free()

    def test_slack_saves_io(self):
        # Partition-side savings need coarse slack (b a multiple of N/K,
        # i.e. the left-grounded regime) and a multi-pass machine — the
        # Table 1 row 5 bound lg min{N/b, N/B} vs the exact lg K.
        n, k = 65_536, 512
        costs = {}
        for slack in (0.0, 7.0):
            mach = Machine(memory=512, block=16)
            f = load_input(mach, uniform_random(n, seed=8))
            plan = plan_shards(mach, f, k, slack=slack)
            costs[slack] = plan.io_cost
            plan.free()
        assert costs[7.0] < 0.92 * costs[0.0]

    def test_shards_are_range_disjoint(self):
        mach = Machine(memory=4096, block=64)
        recs = uniform_random(4000, seed=9)
        f = load_input(mach, recs)
        plan = plan_shards(mach, f, 4, slack=0.25)
        parts = plan.partitioned.to_numpy_partitions()
        prev_max = None
        for p in parts:
            if not len(p):
                continue
            if prev_max is not None:
                assert p["key"].min() >= prev_max  # keys may tie at edges
            prev_max = p["key"].max()

    def test_invalid_workers(self):
        mach = Machine(memory=4096, block=64)
        f = load_input(mach, uniform_random(100, seed=10))
        with pytest.raises(SpecError):
            plan_shards(mach, f, 0)
        with pytest.raises(SpecError):
            plan_shards(mach, f, 101)


class TestOrderStats:
    def _setup(self, n=10_000, seed=20):
        from repro.workloads import load_input, random_permutation

        mach = Machine(memory=4096, block=64)
        recs = random_permutation(n, seed=seed)
        return mach, recs, load_input(mach, recs)

    def test_median_and_percentiles(self):
        from repro.apps import median, percentile, percentiles

        mach, recs, f = self._setup()
        keys = np.sort(recs["key"])
        assert median(mach, f) == keys[4999]
        assert percentile(mach, f, 0.25) == keys[2499]
        got = percentiles(mach, f, [0.1, 0.5, 0.9])
        assert got == [keys[999], keys[4999], keys[8999]]

    def test_percentile_edges(self):
        from repro.apps import percentile

        mach, recs, f = self._setup(n=1000)
        keys = np.sort(recs["key"])
        assert percentile(mach, f, 0.0) == keys[0]
        assert percentile(mach, f, 1.0) == keys[-1]

    def test_percentiles_one_multiselect_io(self):
        """Many quantiles cost one batched multi-selection, not a loop.

        Pinned exactly: the ``percentiles`` I/O equals one
        ``multi_select`` over the same ranks, and undercuts looping
        ``percentile`` per quantile.
        """
        from repro.apps import percentile, percentiles
        from repro.apps.order_stats import rank_of_fraction
        from repro.core import multi_select

        qs = [i / 10 for i in range(1, 10)]
        mach, recs, f = self._setup()
        mach.reset_counters()
        got = percentiles(mach, f, qs)
        batched_io = mach.io.total

        mach2, _, f2 = self._setup()
        ranks = np.array(
            [rank_of_fraction(len(recs), q) for q in qs], dtype=np.int64
        )
        mach2.reset_counters()
        multi_select(mach2, f2, ranks)
        assert batched_io == mach2.io.total

        mach3, _, f3 = self._setup()
        mach3.reset_counters()
        looped = [percentile(mach3, f3, q) for q in qs]
        assert looped == got
        assert batched_io < mach3.io.total / 2

    def test_percentiles_via_partition_index(self):
        """Routing through a built PartitionIndex gives the same answers
        for far less I/O than the from-scratch multi-selection."""
        from repro.apps import percentiles
        from repro.service import PartitionIndex

        qs = [i / 10 for i in range(1, 10)]
        mach, recs, f = self._setup()
        mach.reset_counters()
        plain = percentiles(mach, f, qs)
        plain_io = mach.io.total

        with PartitionIndex.build(mach, f, 16) as index:
            mach.reset_counters()
            routed = percentiles(mach, f, qs, index=index)
            routed_io = mach.io.total
        assert routed == plain
        assert routed_io < plain_io
        assert percentiles(mach, f, [], index=None) == []

    def test_trimmed_mean_matches_numpy(self):
        from repro.apps import trimmed_mean

        mach, recs, f = self._setup()
        keys = np.sort(recs["key"])
        lo = int(np.floor(0.1 * len(keys)))
        expected = keys[lo : len(keys) - lo].mean()
        got = trimmed_mean(mach, f, trim=0.1)
        assert got == pytest.approx(expected)

    def test_trimmed_mean_zero_trim_is_mean(self):
        from repro.apps import trimmed_mean

        mach, recs, f = self._setup(n=2000)
        assert trimmed_mean(mach, f, trim=0.0) == pytest.approx(
            recs["key"].mean()
        )

    def test_trimmed_mean_linear_io(self):
        from repro.apps import trimmed_mean

        mach, recs, f = self._setup(n=50_000)
        mach.reset_counters()
        trimmed_mean(mach, f, trim=0.2)
        assert mach.io.total <= 10 * (50_000 // 64)

    def test_top_k_smallest_and_largest(self):
        from repro.apps import top_k

        mach, recs, f = self._setup(n=5000)
        keys = np.sort(recs["key"])
        small = top_k(mach, f, 100)
        assert np.array_equal(np.sort(small.to_numpy()["key"]), keys[:100])
        small.free()
        large = top_k(mach, f, 100, largest=True)
        assert np.array_equal(np.sort(large.to_numpy()["key"]), keys[-100:])
        large.free()

    def test_validation(self):
        from repro.apps import percentile, top_k, trimmed_mean

        mach, recs, f = self._setup(n=100)
        with pytest.raises(SpecError):
            percentile(mach, f, 1.5)
        with pytest.raises(SpecError):
            trimmed_mean(mach, f, trim=0.5)
        with pytest.raises(SpecError):
            top_k(mach, f, 0)
        with pytest.raises(SpecError):
            top_k(mach, f, 101)

    def test_duplicates(self):
        from repro.apps import median, top_k
        from repro.workloads import few_distinct, load_input

        mach = Machine(memory=4096, block=64)
        recs = few_distinct(3000, seed=21, n_distinct=3)
        f = load_input(mach, recs)
        assert median(mach, f) == int(np.sort(recs["key"])[1499])
        out = top_k(mach, f, 500)
        assert np.array_equal(
            np.sort(out.to_numpy()["key"]), np.sort(recs["key"])[:500]
        )

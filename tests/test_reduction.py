"""Tests for the §3 reduction (precise partitioning via approximate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alg.multipartition import multi_partition
from repro.analysis.verify import check_partitioned
from repro.core.reduction import precise_partition_via_approx
from repro.em import Machine, SpecError
from repro.workloads import load_input, random_permutation


def lopsided_solver(machine, file, k, b):
    """Approximate solver with deliberately uneven (but legal) sizes."""
    n = len(file)
    rng = np.random.default_rng(99)
    sizes = []
    remaining = n
    while remaining > 0:
        take = int(min(remaining, rng.integers(1, b + 1)))
        sizes.append(take)
        remaining -= take
    return multi_partition(machine, file, sizes)


class TestCorrectness:
    @given(
        blocks=st.integers(1, 60),
        b_factor=st.sampled_from([1, 2, 4, 10]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_instances(self, blocks, b_factor, seed):
        mach = Machine(memory=256, block=8)
        b = 8 * b_factor
        n = blocks * b
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        pf = precise_partition_via_approx(mach, f, b)
        check_partitioned(recs, pf, b, b, n // b)
        pf.free()

    def test_with_lopsided_solver(self):
        mach = Machine(memory=256, block=8)
        n, b = 2000, 100
        recs = random_permutation(n, seed=1)
        f = load_input(mach, recs)
        pf = precise_partition_via_approx(mach, f, b, approx_solver=lopsided_solver)
        check_partitioned(recs, pf, b, b, n // b)

    def test_disk_resident_residue_path(self):
        mach = Machine(memory=256, block=8)
        n, b = 2400, 200  # 2b + 3B > M forces the external sweep
        assert 2 * b + 3 * mach.B > mach.M
        recs = random_permutation(n, seed=2)
        f = load_input(mach, recs)
        pf = precise_partition_via_approx(mach, f, b)
        check_partitioned(recs, pf, b, b, n // b)

    def test_single_partition(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(64, seed=3)
        f = load_input(mach, recs)
        pf = precise_partition_via_approx(mach, f, 64)
        assert pf.partition_sizes == [64]

    def test_b_one(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(40, seed=4)
        f = load_input(mach, recs)
        pf = precise_partition_via_approx(mach, f, 1)
        check_partitioned(recs, pf, 1, 1, 40)


class TestValidation:
    def test_non_divisible_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=5))
        with pytest.raises(SpecError):
            precise_partition_via_approx(mach, f, 33)

    def test_bad_b_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=6))
        with pytest.raises(SpecError):
            precise_partition_via_approx(mach, f, 0)

    def test_oversized_solver_output_rejected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=7))

        def bad_solver(machine, file, k, b):
            return multi_partition(machine, file, [len(file)])

        with pytest.raises(SpecError):
            precise_partition_via_approx(mach, f, 10, approx_solver=bad_solver)


class TestCost:
    def test_sweep_is_linear_in_memory_regime(self):
        mach = Machine(memory=4096, block=64)
        n, b = 40_000, 500
        f = load_input(mach, random_permutation(n, seed=8))
        mach.reset_counters()
        pf = precise_partition_via_approx(mach, f, b)
        from repro.analysis import phase_total

        sweep = phase_total(mach.io, "reduction-sweep")
        assert sweep <= 4 * (n // 64)
        pf.free()

    def test_no_leaks(self):
        mach = Machine(memory=4096, block=64)
        f = load_input(mach, random_permutation(20_000, seed=9))
        pf = precise_partition_via_approx(mach, f, 1000)
        assert mach.memory.in_use == 0
        pf.free()
        assert mach.disk.live_blocks == f.num_blocks


def adversarial_order_solver(machine, file, k, b):
    """Partitions are correct as sets but each partition's records are
    written in *reverse* order — the smallest element arrives last.
    Regression guard: the sweep must append a whole partition before
    splitting the residue (splitting mid-partition emits wrong elements
    for exactly this layout)."""
    from repro.alg.partitioned import PartitionedFile
    from repro.em import EMFile
    from repro.em.records import sort_records

    data = sort_records(file.to_numpy(counted=False))[::-1]  # descending
    n = len(data)
    sizes = []
    remaining = n
    while remaining > 0:
        take = min(b, remaining)
        sizes.append(take)
        remaining -= take
    segs, seg_part = [], []
    offset = n
    for i, size in enumerate(sizes):
        # partition i holds the i-th *smallest* range, records descending.
        chunk = data[offset - size : offset]
        segs.append(EMFile.from_records(machine, chunk, counted=True))
        seg_part.append(i)
        offset -= size
    return PartitionedFile(machine, segs, seg_part, sizes)


class TestSweepOrderRegression:
    def test_descending_within_partition(self):
        mach = Machine(memory=4096, block=64)
        n, b = 12_800, 512
        recs = random_permutation(n, seed=77)
        f = load_input(mach, recs)
        pf = precise_partition_via_approx(
            mach, f, b, approx_solver=adversarial_order_solver
        )
        check_partitioned(recs, pf, b, b, n // b)

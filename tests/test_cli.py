"""Tests for the CLI and the Table 1 renderer."""

import pytest

from repro.bounds.table import render_table1, table1_rows
from repro.cli import main


class TestTable1:
    def test_rows_shape(self):
        rows = table1_rows(10**6, 256, 512, 16_384, 4096, 64)
        assert len(rows) == 6
        problems = {r[0] for r in rows}
        assert problems == {"K-splitters", "K-partitioning"}
        for _, _, lower, upper in rows:
            assert 0 < lower <= upper + 1e-9

    def test_theta_rows_equal(self):
        rows = table1_rows(10**6, 256, 512, 16_384, 4096, 64)
        by = {(p, g): (lo, up) for p, g, lo, up in rows}
        for key in [("K-splitters", "right"), ("K-splitters", "left"),
                    ("K-splitters", "2-sided"), ("K-partitioning", "left")]:
            lo, up = by[key]
            assert lo == up

    def test_render_contains_reference(self):
        out = render_table1(10**6, 256, 512, 16_384, 4096, 64)
        assert "one scan" in out
        assert "sorting bound" in out


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1.R1" in out and "THM4" in out

    def test_bounds(self, capsys):
        rc = main(["bounds", "--n", "100000", "--k", "64", "--a", "100",
                   "--b", "5000"])
        assert rc == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_single_quick(self, capsys, tmp_path):
        rc = main(["run", "T1.R4", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert (tmp_path / "T1_R4.txt").exists()

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "sublinear" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "BOGUS"])


class TestSolve:
    def test_solve_splitters(self, capsys):
        rc = main(["solve", "--problem", "splitters", "--n", "5000",
                   "--k", "8", "--a", "100", "--b", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified" in out and "I/O by phase" in out

    def test_solve_partition(self, capsys):
        rc = main(["solve", "--problem", "partition", "--n", "4000",
                   "--k", "4", "--workload", "few-distinct"])
        assert rc == 0
        assert "verified" in capsys.readouterr().out

    def test_solve_multiselect(self, capsys):
        rc = main(["solve", "--problem", "multiselect", "--n", "4000",
                   "--k", "10", "--memory", "512", "--block", "16"])
        assert rc == 0
        assert "comparisons" in capsys.readouterr().out

    def test_solve_unknown_workload(self, capsys):
        rc = main(["solve", "--problem", "splitters", "--n", "100",
                   "--k", "2", "--workload", "nope"])
        assert rc == 2


class TestApiDocs:
    def test_generated_api_docs_up_to_date(self):
        """docs/API.md must match the current public surface."""
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).parent.parent
        proc = subprocess.run(
            [sys.executable, str(root / "scripts" / "gen_api_docs.py"), "--check"],
            cwd=root,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

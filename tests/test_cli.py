"""Tests for the CLI and the Table 1 renderer."""

import json

import pytest

from repro.bounds.table import render_table1, table1_rows
from repro.cli import main
from repro.em.machine import observe_machines


class TestTable1:
    def test_rows_shape(self):
        rows = table1_rows(10**6, 256, 512, 16_384, 4096, 64)
        assert len(rows) == 6
        problems = {r[0] for r in rows}
        assert problems == {"K-splitters", "K-partitioning"}
        for _, _, lower, upper in rows:
            assert 0 < lower <= upper + 1e-9

    def test_theta_rows_equal(self):
        rows = table1_rows(10**6, 256, 512, 16_384, 4096, 64)
        by = {(p, g): (lo, up) for p, g, lo, up in rows}
        for key in [("K-splitters", "right"), ("K-splitters", "left"),
                    ("K-splitters", "2-sided"), ("K-partitioning", "left")]:
            lo, up = by[key]
            assert lo == up

    def test_render_contains_reference(self):
        out = render_table1(10**6, 256, 512, 16_384, 4096, 64)
        assert "one scan" in out
        assert "sorting bound" in out


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "T1.R1" in out and "THM4" in out

    def test_bounds(self, capsys):
        rc = main(["bounds", "--n", "100000", "--k", "64", "--a", "100",
                   "--b", "5000"])
        assert rc == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_single_quick(self, capsys, tmp_path):
        rc = main(["run", "T1.R4", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert (tmp_path / "T1_R4.txt").exists()

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        assert "sublinear" in capsys.readouterr().out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["run", "BOGUS"])

    def test_run_parallel_jobs(self, capsys, tmp_path):
        rc = main(["run", "T1.R4", "ABL4", "--jobs", "2", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out
        assert (tmp_path / "T1_R4.txt").exists()
        assert (tmp_path / "ABL4.txt").exists()

    def test_run_failure_still_writes_later_tables(self, capsys, tmp_path):
        from repro.experiments.base import Experiment, _REGISTRY

        def boom(quick=False):
            raise RuntimeError("forced crash")

        _REGISTRY["ZZ.CRASH"] = Experiment("ZZ.CRASH", "always crashes", boom)
        try:
            rc = main(["run", "T1.R4", "ZZ.CRASH", "ABL4", "--out", str(tmp_path)])
        finally:
            del _REGISTRY["ZZ.CRASH"]
        assert rc == 1  # the crash is reported...
        out = capsys.readouterr().out
        assert "forced crash" in out
        # ...but every experiment still got its rendered table written.
        for name in ("T1_R4.txt", "ZZ_CRASH.txt", "ABL4.txt"):
            assert (tmp_path / name).exists(), name
        assert "verdict: PASS" in (tmp_path / "ABL4.txt").read_text()


class TestSolve:
    def test_solve_splitters(self, capsys):
        rc = main(["solve", "--problem", "splitters", "--n", "5000",
                   "--k", "8", "--a", "100", "--b", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified" in out and "I/O by phase" in out

    def test_solve_partition(self, capsys):
        rc = main(["solve", "--problem", "partition", "--n", "4000",
                   "--k", "4", "--workload", "few-distinct"])
        assert rc == 0
        assert "verified" in capsys.readouterr().out

    def test_solve_multiselect(self, capsys):
        rc = main(["solve", "--problem", "multiselect", "--n", "4000",
                   "--k", "10", "--memory", "512", "--block", "16"])
        assert rc == 0
        assert "comparisons" in capsys.readouterr().out

    def test_solve_unknown_workload(self, capsys):
        rc = main(["solve", "--problem", "splitters", "--n", "100",
                   "--k", "2", "--workload", "nope"])
        assert rc == 2

    def test_solve_success_releases_all_blocks_and_trace(self):
        machines = []
        with observe_machines(machines.append):
            rc = main(["solve", "--problem", "partition", "--n", "2000",
                       "--k", "4", "--trace"])
        assert rc == 0
        (machine,) = machines
        assert machine.disk.live_blocks == 0
        assert not machine.disk.tracing

    def test_solve_failure_releases_all_blocks_and_trace(
        self, monkeypatch, capsys
    ):
        # Regression: a verification failure mid-measure used to leak
        # the partition output file and leave the access trace running.
        import repro.analysis

        def boom(*args, **kwargs):
            raise RuntimeError("forced verification failure")

        monkeypatch.setattr(repro.analysis, "check_partitioned", boom)
        machines = []
        with observe_machines(machines.append):
            rc = main(["solve", "--problem", "partition", "--n", "2000",
                       "--k", "4", "--trace"])
        assert rc == 1
        assert "forced verification failure" in capsys.readouterr().err
        (machine,) = machines
        assert machine.disk.live_blocks == 0, "solve leaked disk blocks"
        assert not machine.disk.tracing, "solve left the trace active"


class TestReport:
    def test_report_quick_writes_doc_and_json_then_serves_from_cache(
        self, capsys, tmp_path
    ):
        out = tmp_path / "EXPERIMENTS.md"
        results = tmp_path / "results.json"
        cache = tmp_path / "cache"
        argv = ["report", "--quick", "--jobs", "2",
                "--out", str(out), "--json", str(results),
                "--cache-dir", str(cache)]
        assert main(argv) == 0
        first_doc = out.read_text()
        assert "paper vs. measured" in first_doc
        data = json.loads(results.read_text())
        assert data["passed"] and data["quick"]
        assert len(data["experiments"]) == 22
        assert all(not e["cached"] for e in data["experiments"])
        capsys.readouterr()

        # Second invocation: served entirely from cache, byte-identical.
        assert main(argv) == 0
        assert "22 cached" in capsys.readouterr().out
        assert out.read_text() == first_doc
        data = json.loads(results.read_text())
        assert all(e["cached"] for e in data["experiments"])

    def test_report_no_cache_forces_recomputation(self, capsys, tmp_path):
        # --no-cache must neither read nor populate the cache dir.
        argv = ["report", "--quick", "--no-cache",
                "--out", str(tmp_path / "E.md"),
                "--json", str(tmp_path / "results.json"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        assert not (tmp_path / "cache").exists()
        assert "22 run, 0 cached" in capsys.readouterr().out


class TestTrace:
    def test_trace_writes_all_three_artifacts(self, capsys, tmp_path):
        rc = main(["trace", "sort", "--n", "4000", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sorted 4000 records" in out and "perfetto" in out.lower()

        chrome = json.loads((tmp_path / "sort.trace.json").read_text())
        events = chrome["traceEvents"]
        assert any(e["ph"] == "M" for e in events)
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in slices} >= {"(machine)", "sort"}

        tree = (tmp_path / "sort.tree.txt").read_text()
        assert "sort" in tree and "share" in tree

        spans = json.loads((tmp_path / "sort.spans.json").read_text())
        assert spans["solver"] == "sort" and spans["io"] > 0
        assert spans["params"]["n"] == 4000
        assert sum(v["io"] for v in spans["rollup"].values()) == spans["io"]
        assert spans["traces"][0]["root"]["children"]

    def test_trace_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["trace", "bogosort"])

    def test_trace_json_mirrors_spans_artifact(self, capsys, tmp_path):
        rc = main(["trace", "sort", "--n", "4000", "--json",
                   "--out", str(tmp_path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        spans = json.loads((tmp_path / "sort.spans.json").read_text())
        assert payload == spans
        assert payload["solver"] == "sort" and payload["io"] > 0


class TestMetricsVerb:
    def test_metrics_writes_artifacts_and_renders(self, capsys, tmp_path):
        rc = main(["metrics", "service-online", "--n", "20000", "--k", "16",
                   "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "svc_query_io{engine=lazy}" in out
        assert "flight recorder:" in out

        prom = (tmp_path / "service-online.prom").read_text()
        assert "# TYPE svc_query_io histogram" in prom
        assert 'svc_query_io_bucket{engine="lazy",le="+Inf"}' in prom

        doc = json.loads(
            (tmp_path / "service-online.metrics.json").read_text()
        )
        assert doc["solver"] == "service-online"
        assert "svc_queries" in doc["metrics"]
        assert doc["flight"]["events"]

        flight = json.loads(
            (tmp_path / "service-online.flight.json").read_text()
        )
        assert flight["events"] == doc["flight"]["events"]

    def test_metrics_json_mode(self, capsys, tmp_path):
        rc = main(["metrics", "service-index", "--n", "8000", "--k", "8",
                   "--json", "--out", str(tmp_path)])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]
        assert payload["io"] > 0

    def test_metrics_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["metrics", "bogosort"])


class TestFlightRecorderCli:
    def test_serve_abort_dumps_flight_and_recover_renders(
        self, capsys, tmp_path
    ):
        script = tmp_path / "session.txt"
        script.write_text("append 10 20 30\nflush\nabort\n")
        dump = tmp_path / "dump.json"
        with pytest.raises(RuntimeError, match="abort requested"):
            main(["serve", "--durable", "--n", "2000", "--k", "4",
                  "--input", str(script), "--flight-dump", str(dump)])
        err = capsys.readouterr().err
        assert f"flight recorder dumped to {dump}" in err
        assert dump.exists()

        rc = main(["recover", "--flight-dump", str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "flight recorder:" in out
        assert "update-flush" in out and "abandon" in out
        # The dump is deterministic: seq numbers are monotone from 0.
        doc = json.loads(dump.read_text())
        assert [e["seq"] for e in doc["events"]] == list(
            range(len(doc["events"]))
        )

    def test_serve_clean_exit_writes_no_dump(self, tmp_path):
        script = tmp_path / "session.txt"
        script.write_text("select 5\nquit\n")
        dump = tmp_path / "dump.json"
        rc = main(["serve", "--durable", "--n", "2000", "--k", "4",
                   "--input", str(script), "--flight-dump", str(dump)])
        assert rc == 0
        assert not dump.exists()


class TestBudgetsCli:
    def test_budgets_check_against_committed_file(self, capsys):
        assert main(["budgets"]) == 0
        assert "budget gate: PASS" in capsys.readouterr().out

    def test_budgets_write_round_trip(self, capsys, tmp_path):
        path = tmp_path / "budgets.json"
        assert main(["budgets", "--write", "--path", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out and "budget gate: PASS" in out
        doc = json.loads(path.read_text())
        assert doc["budgets"]


class TestServiceVerbs:
    def test_query_batch(self, capsys):
        rc = main(["query", "--n", "5000", "--k", "8",
                   "select:100", "select:100", "quantile:0.5",
                   "range:10:2000", "part:42"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "select 100 -> key=" in out
        assert "range_count (10, 2000] ->" in out
        assert "2 distinct ranks" in out  # 2 selects + quantile collapse

    def test_query_eager_engine(self, capsys):
        rc = main(["query", "--engine", "eager", "--n", "2000", "--k", "4",
                   "select:1", "quantile:1.0"])
        assert rc == 0
        assert "engine=eager" in capsys.readouterr().out

    def test_query_bad_spec(self):
        with pytest.raises(SystemExit):
            main(["query", "--n", "100", "--k", "2", "argmax:4"])

    def test_serve_script(self, capsys, tmp_path):
        script = tmp_path / "session.txt"
        script.write_text(
            "# warm up\nselect 10 20\nquantile 0.5\nrange 5 500\n"
            "append 1 2 3\ndelete 1\nflush\nselect 1\nstats\nquit\n"
        )
        rc = main(["serve", "--n", "1000", "--k", "4",
                   "--input", str(script)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "partition service up" in out
        assert "buffered 3 appends" in out
        assert "update flush" in out
        assert "served 5 queries" in out

    def test_serve_releases_all_blocks(self, tmp_path):
        script = tmp_path / "session.txt"
        script.write_text("select 5\nbogus\nquit\n")
        machines = []
        with observe_machines(machines.append):
            rc = main(["serve", "--n", "500", "--k", "2", "--engine",
                       "lazy", "--input", str(script)])
        assert rc == 1  # the bogus command is reported
        (machine,) = machines
        assert machine.disk.live_blocks == 0
        assert machine.memory.in_use == 0

    def test_bench_queries_quick(self, capsys, tmp_path):
        out_file = tmp_path / "bench.txt"
        rc = main(["bench-queries", "--quick", "--n", "20000", "--k", "16",
                   "--queries", "48", "--out", str(out_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "answers identical to offline          : yes" in out
        assert "PASS" in out
        assert "per-query I/O p50 / p95 / p99" in out
        assert out_file.exists()
        assert "online / offline" in out_file.read_text()

    def test_bench_queries_json_reproducible(self, capsys, tmp_path):
        argv = ["bench-queries", "--quick", "--n", "20000", "--k", "16",
                "--queries", "48", "--json",
                "--out", str(tmp_path / "bench.txt")]
        docs = []
        for _ in range(2):
            assert main(argv) == 0
            docs.append(json.loads(capsys.readouterr().out))
        doc = docs[0]
        assert doc["answers_identical"] and doc["passed"]
        assert doc["per_query_io"]["count"] == 48
        assert doc["per_query_io"]["p50"] <= doc["per_query_io"]["p99"]
        assert "svc_query_io" in doc["metrics"]
        # Everything except wall-clock must be byte-for-byte stable.
        for d in docs:
            d.pop("wall_s")
        assert docs[0] == docs[1]
        assert "p50" in (tmp_path / "bench.txt").read_text()


class TestLintCli:
    def test_lint_repo_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_flags_violations(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "alg" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def f(m, file):\n"
            "    m.disk.peek(0)\n"
            "    return np.random.rand()\n"
        )
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R2" in out and "R4" in out

    def test_lint_json_output(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "alg" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f():\n    return np.random.rand()\n")
        assert main(["lint", "--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "R4"

    def test_lint_rule_selection(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "alg" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f(m):\n    return m.disk.peek(0)\n")
        assert main(["lint", "--rule", "R4,R5", str(bad)]) == 0

    def test_lint_unknown_rule(self, capsys):
        assert main(["lint", "--rule", "R99"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_diff_unknown_ref(self, capsys):
        assert main(["lint", "--diff", "no-such-ref-xyz"]) == 2
        assert "cannot resolve" in capsys.readouterr().err

    def test_lint_baseline_suppresses_known_findings(self, capsys, tmp_path):
        bad = tmp_path / "repro" / "alg" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("def f():\n    return np.random.rand()\n")
        assert main(["lint", "--json", str(bad)]) == 1
        baseline = tmp_path / "base.json"
        baseline.write_text(capsys.readouterr().out)
        assert main(["lint", "--baseline", str(baseline), str(bad)]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestSanitizeCheckCli:
    def test_traps_and_one_solver(self, capsys):
        rc = main(["sanitize-check", "--solver", "splitters"])
        assert rc == 0
        out = capsys.readouterr().out
        for trap in ("use-after-free", "double-free", "uninitialized-read",
                     "double-release", "lease-leak"):
            assert f"{trap:22s} PASS" in out
        assert "sanitize-check: PASS" in out

    def test_incompatible_override_reports_error(self, capsys):
        # reduction needs n to be a multiple of its part size; a bad
        # override must surface as a counted ERROR, not a traceback.
        rc = main(["sanitize-check", "--solver", "reduction", "--n", "4097"])
        assert rc == 1
        assert "ERROR" in capsys.readouterr().out


class TestApiDocs:
    def test_generated_api_docs_up_to_date(self):
        """docs/API.md must match the current public surface."""
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).parent.parent
        proc = subprocess.run(
            [sys.executable, str(root / "scripts" / "gen_api_docs.py"), "--check"],
            cwd=root,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

"""Unit tests for the machine and its memory accountant."""

import pytest

from repro.em import LeaseError, Machine, MemoryBudgetError
from repro.em.machine import MemoryAccountant


class TestMachineConstruction:
    def test_parameters(self):
        m = Machine(memory=4096, block=64)
        assert (m.M, m.B, m.fanout) == (4096, 64, 64)

    def test_requires_m_at_least_2b(self):
        with pytest.raises(ValueError):
            Machine(memory=100, block=64)

    def test_minimal_machine(self):
        m = Machine(memory=2, block=1)
        assert m.fanout == 2

    def test_bad_block(self):
        with pytest.raises(ValueError):
            Machine(memory=8, block=0)


class TestAccountant:
    def test_lease_and_release(self):
        acc = MemoryAccountant(100)
        lease = acc.lease(60)
        assert acc.in_use == 60
        assert acc.available == 40
        lease.release()
        assert acc.in_use == 0

    def test_budget_enforced(self):
        acc = MemoryAccountant(100)
        acc.lease(80)
        with pytest.raises(MemoryBudgetError) as ei:
            acc.lease(21)
        assert ei.value.requested == 21
        assert ei.value.in_use == 80

    def test_exact_fit_allowed(self):
        acc = MemoryAccountant(100)
        acc.lease(100)
        assert acc.available == 0

    def test_double_release_fails(self):
        acc = MemoryAccountant(100)
        lease = acc.lease(10)
        lease.release()
        with pytest.raises(LeaseError):
            lease.release()

    def test_context_manager_releases(self):
        acc = MemoryAccountant(100)
        with acc.lease(50):
            assert acc.in_use == 50
        assert acc.in_use == 0

    def test_context_manager_releases_on_error(self):
        acc = MemoryAccountant(100)
        with pytest.raises(RuntimeError):
            with acc.lease(50):
                raise RuntimeError("boom")
        assert acc.in_use == 0

    def test_resize_up_and_down(self):
        acc = MemoryAccountant(100)
        lease = acc.lease(10)
        lease.resize(90)
        assert acc.in_use == 90
        lease.resize(5)
        assert acc.in_use == 5

    def test_resize_over_budget_fails(self):
        acc = MemoryAccountant(100)
        acc.lease(50)
        lease = acc.lease(10)
        with pytest.raises(MemoryBudgetError):
            lease.resize(60)
        assert lease.size == 10

    def test_resize_error_reports_new_size_and_label(self):
        # Regression: the error used to report the resize *delta* as the
        # requested size (even a negative number for shrinking leases),
        # not the requested new size or which lease asked.
        acc = MemoryAccountant(100)
        acc.lease(50)
        lease = acc.lease(10, "gather")
        with pytest.raises(MemoryBudgetError) as ei:
            lease.resize(60)
        assert ei.value.requested == 60
        assert ei.value.in_use == 60
        assert ei.value.capacity == 100
        assert ei.value.label == "gather"
        assert "gather" in str(ei.value)
        assert " 60 " in str(ei.value)

    def test_lease_error_carries_label(self):
        acc = MemoryAccountant(100)
        with pytest.raises(MemoryBudgetError) as ei:
            acc.lease(200, "huge-buffer")
        assert ei.value.label == "huge-buffer"
        assert "huge-buffer" in str(ei.value)

    def test_resize_after_release_fails(self):
        acc = MemoryAccountant(100)
        lease = acc.lease(10)
        lease.release()
        with pytest.raises(LeaseError):
            lease.resize(20)

    def test_peak_tracking(self):
        acc = MemoryAccountant(100)
        a = acc.lease(70)
        a.release()
        acc.lease(20)
        assert acc.peak == 70
        acc.reset_peak()
        assert acc.peak == 20

    def test_zero_lease(self):
        acc = MemoryAccountant(100)
        with acc.lease(0):
            assert acc.in_use == 0

    def test_negative_lease_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccountant(100).lease(-1)


class TestMeasure:
    def test_measure_counts_inner_ios(self):
        m = Machine(memory=64, block=8)
        (bid,) = m.disk.allocate(1)
        from repro.em.records import make_records
        import numpy as np

        with m.measure() as cost:
            m.disk.write(bid, make_records(np.arange(4)))
            m.disk.read(bid)
        assert (cost.reads, cost.writes, cost.total) == (1, 1, 2)

    def test_measure_with_label(self):
        m = Machine(memory=64, block=8)
        (bid,) = m.disk.allocate(1)
        from repro.em.records import make_records
        import numpy as np

        with m.measure("phase-x") as cost:
            m.disk.write(bid, make_records(np.arange(2)))
        assert cost.by_phase == {"phase-x": (0, 1)}

    def test_reset_counters(self):
        m = Machine(memory=64, block=8)
        (bid,) = m.disk.allocate(1)
        from repro.em.records import make_records
        import numpy as np

        m.disk.write(bid, make_records(np.arange(2)))
        m.reset_counters()
        assert m.io.total == 0

"""Unit and property tests for the record representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em.records import (
    KEY_MAX,
    KEY_MIN,
    RECORD_DTYPE,
    UID_MAX,
    composite,
    composite_of,
    concat_records,
    empty_records,
    make_records,
    sort_records,
)


class TestMakeRecords:
    def test_basic_fields(self):
        r = make_records(np.array([5, 3, 9]))
        assert r.dtype == RECORD_DTYPE
        assert list(r["key"]) == [5, 3, 9]
        assert list(r["uid"]) == [0, 1, 2]
        assert list(r["grp"]) == [0, 0, 0]

    def test_explicit_uids_and_groups(self):
        r = make_records(np.array([1, 1]), uids=np.array([7, 9]), grps=np.array([2, 3]))
        assert list(r["uid"]) == [7, 9]
        assert list(r["grp"]) == [2, 3]

    def test_scalar_group(self):
        r = make_records(np.array([1, 2]), grps=5)
        assert list(r["grp"]) == [5, 5]

    def test_empty(self):
        r = make_records(np.array([], dtype=np.int64))
        assert len(r) == 0

    def test_key_range_enforced(self):
        with pytest.raises(ValueError):
            make_records(np.array([KEY_MAX + 1]))
        with pytest.raises(ValueError):
            make_records(np.array([KEY_MIN - 1]))

    def test_uid_range_enforced(self):
        with pytest.raises(ValueError):
            make_records(np.array([1]), uids=np.array([UID_MAX + 1]))
        with pytest.raises(ValueError):
            make_records(np.array([1]), uids=np.array([-1]))

    def test_boundary_values_accepted(self):
        r = make_records(
            np.array([KEY_MIN, KEY_MAX]), uids=np.array([0, UID_MAX])
        )
        assert len(r) == 2

    def test_rejects_2d_keys(self):
        with pytest.raises(ValueError):
            make_records(np.zeros((2, 2), dtype=np.int64))

    def test_uid_shape_mismatch(self):
        with pytest.raises(ValueError):
            make_records(np.array([1, 2]), uids=np.array([1]))


class TestComposite:
    @given(
        keys=st.lists(st.integers(KEY_MIN, KEY_MAX), min_size=2, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_composite_respects_lexicographic_order(self, keys):
        r = make_records(np.array(keys, dtype=np.int64))
        comps = composite(r)
        lex = np.lexsort((r["uid"], r["key"]))
        assert np.array_equal(np.argsort(comps, kind="stable"), lex)

    @given(
        keys=st.lists(st.integers(-100, 100), min_size=1, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_composite_injective(self, keys):
        r = make_records(np.array(keys, dtype=np.int64))
        comps = composite(r)
        assert len(np.unique(comps)) == len(comps)

    def test_composite_of_matches_vectorized(self):
        r = make_records(np.array([42]), uids=np.array([17]))
        assert composite_of(42, 17) == int(composite(r)[0])

    def test_boundary_no_overflow(self):
        r = make_records(
            np.array([KEY_MIN, KEY_MAX]), uids=np.array([UID_MAX, UID_MAX])
        )
        comps = composite(r)
        assert comps[0] < comps[1]
        assert comps.dtype == np.int64


class TestSortConcat:
    def test_sort_records_total_order(self):
        r = make_records(np.array([3, 1, 3, 2]))
        s = sort_records(r)
        assert list(s["key"]) == [1, 2, 3, 3]
        # Equal keys ordered by uid.
        assert list(s["uid"]) == [1, 3, 0, 2]

    def test_sort_is_copy(self):
        r = make_records(np.array([2, 1]))
        s = sort_records(r)
        s["key"][0] = 99
        assert r["key"][1] == 1

    def test_concat_empty_list(self):
        assert len(concat_records([])) == 0

    def test_concat(self):
        a = make_records(np.array([1]))
        b = make_records(np.array([2, 3]))
        assert len(concat_records([a, b])) == 3

    def test_empty_records(self):
        assert len(empty_records()) == 0
        assert empty_records(5).dtype == RECORD_DTYPE

"""Unit and property tests for buffered streams and the k-way merge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em import (
    BlockReader,
    BlockWriter,
    EMFile,
    Machine,
    StreamError,
    composite,
    copy_file,
    merge_sorted_files,
    scan_chunks,
)
from repro.em.records import make_records, sort_records


@pytest.fixture
def mach():
    return Machine(memory=256, block=8)


def recs(n, start=0):
    return make_records(np.arange(start, start + n))


class TestBlockReader:
    def test_reads_all_blocks(self, mach):
        f = EMFile.from_records(mach, recs(20))
        with BlockReader(f) as reader:
            sizes = [len(b) for b in reader]
        assert sizes == [8, 8, 4]

    def test_holds_block_lease(self, mach):
        f = EMFile.from_records(mach, recs(20))
        with BlockReader(f):
            assert mach.memory.in_use == mach.B
        assert mach.memory.in_use == 0

    def test_lease_released_on_error(self, mach):
        f = EMFile.from_records(mach, recs(20))
        with pytest.raises(RuntimeError):
            with BlockReader(f) as reader:
                for _ in reader:
                    raise RuntimeError("boom")
        assert mach.memory.in_use == 0

    def test_closed_reader_refuses(self, mach):
        f = EMFile.from_records(mach, recs(20))
        reader = BlockReader(f)
        it = iter(reader)
        next(it)
        reader.close()
        with pytest.raises(StreamError):
            next(it)

    def test_close_mid_iteration_releases_lease_immediately(self, mach):
        f = EMFile.from_records(mach, recs(20))
        reader = BlockReader(f)
        it = iter(reader)
        next(it)
        assert mach.memory.in_use == mach.B
        reader.close()
        assert mach.memory.in_use == 0
        reader.close()  # idempotent
        assert mach.memory.in_use == 0

    def test_break_out_of_with_block_releases_lease(self, mach):
        f = EMFile.from_records(mach, recs(40))
        with BlockReader(f) as reader:
            for _ in reader:
                break
        assert mach.memory.in_use == 0


class TestBlockWriter:
    def test_accumulates_into_blocks(self, mach):
        w = BlockWriter(mach)
        w.write(recs(3))
        w.write(recs(3, 3))
        w.write(recs(3, 6))
        f = w.close()
        assert len(f) == 9
        assert f.num_blocks == 2
        assert len(f.read_block(0)) == 8

    def test_records_written_property(self, mach):
        w = BlockWriter(mach)
        w.write(recs(10))
        assert w.records_written == 10
        w.close()

    def test_large_single_write(self, mach):
        w = BlockWriter(mach)
        w.write(recs(50))
        f = w.close()
        assert len(f) == 50
        assert f.num_blocks == 7

    def test_write_after_close_fails(self, mach):
        w = BlockWriter(mach)
        w.close()
        with pytest.raises(StreamError):
            w.write(recs(1))

    def test_double_close_fails(self, mach):
        w = BlockWriter(mach)
        w.close()
        with pytest.raises(StreamError):
            w.close()

    def test_abort_frees_everything(self, mach):
        live = mach.disk.live_blocks
        w = BlockWriter(mach)
        w.write(recs(30))
        w.abort()
        assert mach.disk.live_blocks == live
        assert mach.memory.in_use == 0

    def test_context_manager_aborts_on_error(self, mach):
        live = mach.disk.live_blocks
        with pytest.raises(RuntimeError):
            with BlockWriter(mach) as w:
                w.write(recs(30))
                raise RuntimeError("boom")
        assert mach.disk.live_blocks == live

    def test_preserves_order(self, mach):
        w = BlockWriter(mach)
        w.write(recs(5, 10))
        w.write(recs(5, 0))
        f = w.close()
        assert list(f.to_numpy()["key"]) == list(range(10, 15)) + list(range(5))


class TestScanChunks:
    def test_chunk_sizes(self, mach):
        f = EMFile.from_records(mach, recs(50))
        chunks = [len(c) for c in scan_chunks(f, 16)]
        assert chunks == [16, 16, 16, 2]

    def test_rounds_down_to_blocks(self, mach):
        f = EMFile.from_records(mach, recs(32))
        chunks = [len(c) for c in scan_chunks(f, 12)]  # -> one block each
        assert chunks == [8, 8, 8, 8]

    def test_leases_during_iteration(self, mach):
        f = EMFile.from_records(mach, recs(50))
        gen = scan_chunks(f, 16)
        next(gen)
        assert mach.memory.in_use == 16
        gen.close()
        assert mach.memory.in_use == 0

    def test_break_releases_lease_deterministically(self, mach):
        # Regression: a caller that broke out of the loop used to hold
        # the chunk lease until the generator happened to be GC'd; the
        # context-manager form releases it at the `with` exit, always.
        f = EMFile.from_records(mach, recs(50))
        with scan_chunks(f, 16) as chunks:
            for chunk in chunks:
                assert mach.memory.in_use == 16
                break
        assert mach.memory.in_use == 0

    def test_exception_inside_with_releases_lease(self, mach):
        f = EMFile.from_records(mach, recs(50))
        with pytest.raises(RuntimeError):
            with scan_chunks(f, 16) as chunks:
                for _ in chunks:
                    raise RuntimeError("boom")
        assert mach.memory.in_use == 0

    def test_exhaustion_releases_lease(self, mach):
        f = EMFile.from_records(mach, recs(50))
        scanner = scan_chunks(f, 16)
        list(scanner)
        assert scanner.closed
        assert mach.memory.in_use == 0

    def test_close_mid_scan_then_next_stops(self, mach):
        f = EMFile.from_records(mach, recs(50))
        scanner = scan_chunks(f, 16)
        it = iter(scanner)
        next(it)
        scanner.close()
        with pytest.raises(StopIteration):
            next(it)
        assert mach.memory.in_use == 0

    def test_scan_io_count_unchanged_by_batching(self, mach):
        f = EMFile.from_records(mach, recs(50), counted=False)
        mach.reset_counters()
        with scan_chunks(f, 16) as chunks:
            total = sum(len(c) for c in chunks)
        assert total == 50
        assert mach.io.reads == f.num_blocks
        assert mach.io.writes == 0


class TestMergeSortedFiles:
    def _merge(self, mach, parts):
        files = [
            EMFile.from_records(mach, sort_records(p), counted=False) for p in parts
        ]
        with BlockWriter(mach) as w:
            merge_sorted_files(mach, files, w)
            out = w.close()
        return out.to_numpy()

    @given(
        data=st.lists(
            st.lists(st.integers(-50, 50), min_size=0, max_size=30),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_global_sort(self, data):
        mach = Machine(memory=256, block=8)
        uid = 0
        parts = []
        for lst in data:
            keys = np.array(lst, dtype=np.int64)
            parts.append(
                make_records(keys, uids=np.arange(uid, uid + len(keys)))
            )
            uid += len(keys)
        merged = self._merge(mach, parts)
        everything = (
            np.concatenate(parts) if parts else make_records(np.array([]))
        )
        assert np.array_equal(
            composite(merged), np.sort(composite(everything))
        )

    def test_merge_io_is_one_read_per_block(self, mach):
        parts = [recs(40, i * 100) for i in range(3)]
        files = [
            EMFile.from_records(mach, sort_records(p), counted=False) for p in parts
        ]
        mach.reset_counters()
        with BlockWriter(mach) as w:
            merge_sorted_files(mach, files, w)
            out = w.close()
        in_blocks = sum(f.num_blocks for f in files)
        assert mach.io.reads == in_blocks
        assert mach.io.writes == out.num_blocks

    def test_merge_empty_input_list(self, mach):
        with BlockWriter(mach) as w:
            merge_sorted_files(mach, [], w)
            out = w.close()
        assert len(out) == 0

    def test_merge_with_empty_files(self, mach):
        parts = [recs(0), recs(10), recs(0)]
        merged = self._merge(mach, parts)
        assert len(merged) == 10


class TestCopyFile:
    def test_copy_content_and_cost(self, mach):
        f = EMFile.from_records(mach, recs(40), counted=False)
        mach.reset_counters()
        out = copy_file(mach, f)
        assert np.array_equal(out.to_numpy()["key"], f.to_numpy()["key"])
        assert mach.io.reads == f.num_blocks
        assert mach.io.writes == out.num_blocks

"""Failure-injection tests: crash the disk mid-algorithm, check hygiene.

A fault-injecting wrapper makes the ``k``-th I/O raise.  After the
failure propagates out of any algorithm, the *memory* invariant must
hold unconditionally: every lease released (the context-manager
discipline), accountant back to zero.  Disk blocks owned by aborted
writers must also be released; intermediate files already handed over
may remain (documented), so disk checks are per-component where the
contract is strict.
"""

import itertools

import numpy as np
import pytest

from repro.alg import external_sort, multi_partition, select_rank, select_rank_fast
from repro.core import (
    approximate_partition,
    approximate_splitters,
    intermixed_select,
    memory_splitters,
    multi_select,
    precise_partition_via_approx,
)
from repro.em import Machine
from repro.em.records import make_records
from repro.workloads import load_input, random_permutation


class InjectedFault(Exception):
    pass


def arm_fault(machine: Machine, fail_at: int) -> None:
    """Make the ``fail_at``-th counted I/O (1-based) raise InjectedFault.

    A batched call counts as one tick per block, so a fault can land in
    the middle of a ``read_many``/``write_many`` batch (the whole batch
    then fails, before any accounting — the disk's batches are atomic).
    """
    disk = machine.disk
    counter = itertools.count(1)
    orig_read, orig_write = disk.read, disk.write
    orig_read_many, orig_write_many = disk.read_many, disk.write_many

    def hits(k):
        return any(next(counter) == fail_at for _ in range(k))

    def read(bid):
        if disk._counting and hits(1):
            raise InjectedFault
        return orig_read(bid)

    def write(bid, data):
        if disk._counting and hits(1):
            raise InjectedFault
        return orig_write(bid, data)

    def read_many(bids):
        if disk._counting and hits(len(bids)):
            raise InjectedFault
        return orig_read_many(bids)

    def write_many(bids, data):
        if disk._counting and hits(len(bids)):
            raise InjectedFault
        return orig_write_many(bids, data)

    disk.read, disk.write = read, write
    disk.read_many, disk.write_many = read_many, write_many


ALGORITHMS = {
    "sort": lambda mach, f: external_sort(mach, f),
    "select-bfprt": lambda mach, f: select_rank(mach, f, len(f) // 2),
    "select-fast": lambda mach, f: select_rank_fast(mach, f, len(f) // 2),
    "multipartition": lambda mach, f: multi_partition(
        mach, f, [len(f) // 4] * 4
    ),
    "memory-splitters": lambda mach, f: memory_splitters(mach, f),
    "multiselect": lambda mach, f: multi_select(
        mach, f, np.linspace(1, len(f), 10).astype(np.int64)
    ),
    "splitters-2s": lambda mach, f: approximate_splitters(
        mach, f, 8, len(f) // 64, len(f) // 2
    ),
    "partition-2s": lambda mach, f: approximate_partition(
        mach, f, 8, len(f) // 64, len(f) // 2
    ),
    "reduction": lambda mach, f: precise_partition_via_approx(
        mach, f, len(f) // 8
    ),
}


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@pytest.mark.parametrize("fail_at", [1, 7, 50, 400])
def test_memory_leases_released_on_midrun_failure(name, fail_at):
    mach = Machine(memory=256, block=8)
    recs = random_permutation(2048, seed=hash(name) % 1000)
    f = load_input(mach, recs)
    arm_fault(mach, fail_at)
    with pytest.raises(InjectedFault):
        ALGORITHMS[name](mach, f)
    assert mach.memory.in_use == 0, (
        f"{name} leaked {mach.memory.in_use} leased records after a fault "
        f"at I/O #{fail_at}"
    )


@pytest.mark.parametrize("fail_at", [2, 5, 11])
def test_intermixed_releases_on_failure(fail_at):
    mach = Machine(memory=256, block=8)
    rng = np.random.default_rng(0)
    L = 4
    grps = rng.integers(0, L, size=1500)
    grps[:L] = np.arange(L)
    recs = make_records(rng.integers(0, 10**6, size=1500), grps=grps)
    d = load_input(mach, recs)
    sizes = np.bincount(grps, minlength=L)
    t = rng.integers(1, sizes + 1)
    arm_fault(mach, fail_at)
    with pytest.raises(InjectedFault):
        intermixed_select(mach, d, t)
    assert mach.memory.in_use == 0


def test_writer_abort_path_frees_disk_on_failure():
    # The distribution pass has an explicit abort path: a failure during
    # the scan must free every bucket writer's blocks, not just leases.
    from repro.alg.distribute import distribute_by_pivots
    from repro.em.records import sort_records

    mach = Machine(memory=256, block=8)
    recs = random_permutation(1000, seed=3)
    f = load_input(mach, recs)
    pivots = sort_records(recs)[[250, 500, 750]]
    live_before = mach.disk.live_blocks
    arm_fault(mach, 40)
    with pytest.raises(InjectedFault):
        distribute_by_pivots(mach, f, pivots)
    assert mach.memory.in_use == 0
    assert mach.disk.live_blocks == live_before


def test_failure_after_completion_is_no_fault():
    # Arming a fault beyond the algorithm's total I/O count must not fire.
    mach = Machine(memory=256, block=8)
    f = load_input(mach, random_permutation(512, seed=4))
    arm_fault(mach, 10**9)
    out = external_sort(mach, f)
    assert len(out) == 512


# ---------------------------------------------------------------------------
# Service-layer chaos: the durable partition service must leave zero
# leaked leases after a kill at any I/O, and its manifest must always be
# recoverable.  The full identity-vs-shadow sweep lives in
# tests/test_durability.py; these entries keep the service in the same
# kill-at-any-I/O harness as the offline algorithms.
# ---------------------------------------------------------------------------


def _service_scenario(mach, f):
    from repro.service import DurablePartitionIndex

    index = DurablePartitionIndex.build_durable(
        mach, f, 8, snapshot_every=2
    )
    try:
        for i in range(4):
            index.append(
                np.arange(10_000 + 32 * i, 10_032 + 32 * i, dtype=np.int64)
            )
            index.delete(10_000 + 32 * i)
            index.flush_updates()
        index.snapshot()
    finally:
        index.abandon()


@pytest.mark.parametrize("fail_at", [1, 7, 25, 60, 120])
def test_service_releases_leases_on_midrun_failure(fail_at):
    # The fault is armed *before* the durable build, so offsets can land
    # inside WAL preformatting and the build-time snapshot too — paths
    # the post-build identity sweep in test_durability.py never reaches.
    mach = Machine(memory=2048, block=32)
    f = load_input(mach, random_permutation(2048, seed=9))
    arm_fault(mach, fail_at)
    try:
        _service_scenario(mach, f)
    except InjectedFault:
        pass
    assert mach.memory.in_use == 0, (
        f"service leaked {mach.memory.in_use} leased records after a "
        f"fault at I/O #{fail_at}"
    )

"""End-to-end: every registered experiment passes its shape checks (quick
mode) and renders.  These are the same harness runs the benchmarks time.
"""

import pytest

from repro.experiments import all_experiments, get_experiment

EXPERIMENT_IDS = [e.exp_id for e in all_experiments()]


@pytest.mark.parametrize("exp_id", EXPERIMENT_IDS)
def test_experiment_passes_quick(exp_id):
    res = get_experiment(exp_id)(quick=True)
    failed = [name for name, ok in res.checks if not ok]
    assert res.passed, f"{exp_id} failed checks: {failed}"
    rendered = res.render()
    assert exp_id in rendered
    assert "PASS" in rendered


def test_registry_contents():
    ids = set(EXPERIMENT_IDS)
    # One experiment per Table 1 row + the theorem/lemma/ablation set.
    assert {
        "T1.R1", "T1.R2", "T1.R3", "T1.R4", "T1.R5", "T1.R6",
        "THM4", "LEM5", "LEM6", "SEC3", "HU6", "SORT",
        "ABL1", "ABL2", "ABL3",
    } <= ids


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("NOPE")

"""Tests for external merge sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alg.sort import external_sort, form_runs, merge_fanout, merge_runs
from repro.analysis.verify import check_sorted
from repro.bounds.formulas import sort_io
from repro.em import Machine, composite
from repro.em.records import make_records
from repro.workloads import (
    few_distinct,
    load_input,
    random_permutation,
    reverse_sorted,
    sorted_keys,
)


class TestCorrectness:
    @given(
        keys=st.lists(st.integers(-1000, 1000), min_size=0, max_size=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_sorts_arbitrary_inputs(self, keys):
        mach = Machine(memory=64, block=8)
        recs = make_records(np.array(keys, dtype=np.int64))
        f = load_input(mach, recs)
        out = external_sort(mach, f)
        check_sorted(recs, out.to_numpy())

    @pytest.mark.parametrize(
        "gen", [random_permutation, sorted_keys, reverse_sorted, few_distinct]
    )
    def test_workloads(self, gen):
        mach = Machine(memory=256, block=8)
        recs = gen(3000, seed=11)
        f = load_input(mach, recs)
        out = external_sort(mach, f)
        check_sorted(recs, out.to_numpy())

    def test_duplicates_ordered_by_uid(self):
        mach = Machine(memory=64, block=8)
        recs = make_records(np.zeros(100, dtype=np.int64))
        f = load_input(mach, recs)
        out = external_sort(mach, f).to_numpy()
        assert np.array_equal(out["uid"], np.arange(100))

    def test_input_left_intact(self):
        mach = Machine(memory=64, block=8)
        recs = random_permutation(100, seed=12)
        f = load_input(mach, recs)
        external_sort(mach, f)
        assert np.array_equal(f.to_numpy()["key"], recs["key"])


class TestCost:
    def test_io_within_constant_of_bound(self):
        mach = Machine(memory=256, block=8)
        n = 20_000
        f = load_input(mach, random_permutation(n, seed=13))
        mach.reset_counters()
        external_sort(mach, f)
        bound = sort_io(n, mach.M, mach.B)
        assert mach.io.total <= 4 * bound

    def test_single_memory_load_two_passes(self):
        mach = Machine(memory=256, block=8)
        n = 200  # fits in one run
        f = load_input(mach, random_permutation(n, seed=14))
        mach.reset_counters()
        external_sort(mach, f)
        # Read once + write once (run formation), no merging.
        assert mach.io.total <= 2 * (n // 8 + 2)

    def test_smaller_fanout_costs_more(self):
        mach1 = Machine(memory=256, block=8)
        mach2 = Machine(memory=256, block=8)
        recs = random_permutation(10_000, seed=15)
        f1, f2 = load_input(mach1, recs), load_input(mach2, recs)
        external_sort(mach1, f1, fanout=2)
        external_sort(mach2, f2)
        assert mach1.io.total > mach2.io.total

    def test_memory_budget_respected(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(10_000, seed=16))
        external_sort(mach, f)
        assert mach.memory.peak <= mach.M
        assert mach.memory.in_use == 0


class TestPieces:
    def test_form_runs_sizes(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(1000, seed=17))
        runs = form_runs(mach, f)
        run_cap = mach.M - 2 * mach.B
        assert all(len(r) <= run_cap for r in runs)
        assert sum(len(r) for r in runs) == 1000
        for r in runs:
            comps = composite(r.to_numpy())
            assert np.all(np.diff(comps) > 0)

    def test_merge_runs_frees_inputs(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(1000, seed=18))
        runs = form_runs(mach, f)
        out = merge_runs(mach, runs)
        assert len(out) == 1000
        # Only the input and the output remain on disk.
        assert mach.disk.live_blocks == f.num_blocks + out.num_blocks

    def test_merge_runs_empty(self):
        mach = Machine(memory=256, block=8)
        out = merge_runs(mach, [])
        assert len(out) == 0

    def test_fanout_clamped(self):
        assert merge_fanout(Machine(memory=64, block=8)) >= 2

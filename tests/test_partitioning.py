"""Tests for §5.2 approximate K-partitioning (all three variants)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.verify import check_partitioned
from repro.core.partitioning import (
    approximate_partition,
    left_grounded_partition,
    right_grounded_partition,
    two_sided_partition,
)
from repro.em import Machine, SpecError
from repro.workloads import few_distinct, load_input, random_permutation


class TestRightGrounded:
    @given(
        n=st.integers(2, 2000),
        k_frac=st.floats(0.0, 1.0),
        a_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_instances(self, n, k_frac, a_frac, seed):
        mach = Machine(memory=256, block=8)
        k = 1 + int(k_frac * (n - 1))
        a = int(a_frac * (n // k))
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        pf = right_grounded_partition(mach, f, k, a)
        check_partitioned(recs, pf, a, n, k)
        pf.free()

    def test_first_partitions_have_exact_size_a(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(1000, seed=1)
        f = load_input(mach, recs)
        pf = right_grounded_partition(mach, f, 5, 100)
        assert pf.partition_sizes == [100, 100, 100, 100, 600]

    def test_k1_single_partition(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(64, seed=2)
        f = load_input(mach, recs)
        pf = right_grounded_partition(mach, f, 1, 64)
        assert pf.partition_sizes == [64]
        check_partitioned(recs, pf, 64, 64, 1)

    def test_a0_empty_prefix_partitions(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(64, seed=3)
        f = load_input(mach, recs)
        pf = right_grounded_partition(mach, f, 4, 0)
        assert pf.partition_sizes == [0, 0, 0, 64]

    def test_must_read_every_block(self):
        # §3: right-grounded partitioning must see every element.
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(20_000, seed=4)
        f = load_input(mach, recs)
        mach.reset_counters()
        pf = right_grounded_partition(mach, f, 16, 100)
        assert set(f.block_ids) <= mach.disk.read_block_ids
        pf.free()


class TestLeftGrounded:
    @given(
        n=st.integers(2, 2000),
        k_frac=st.floats(0.0, 1.0),
        b_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_instances(self, n, k_frac, b_frac, seed):
        mach = Machine(memory=256, block=8)
        k = 1 + int(k_frac * (n - 1))
        b_min = -(-n // k)
        b = b_min + int(b_frac * (n - b_min))
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        pf = left_grounded_partition(mach, f, k, b)
        check_partitioned(recs, pf, 0, b, k)
        pf.free()

    def test_padding_with_empty_partitions(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(100, seed=5)
        f = load_input(mach, recs)
        pf = left_grounded_partition(mach, f, 10, 50)
        assert pf.partition_sizes == [50, 50] + [0] * 8

    def test_near_equal_split(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(103, seed=6)
        f = load_input(mach, recs)
        pf = left_grounded_partition(mach, f, 4, 26)
        assert sorted(pf.partition_sizes, reverse=True) == [26, 26, 26, 25]


class TestTwoSided:
    @given(
        n=st.integers(4, 1500),
        k_frac=st.floats(0.0, 1.0),
        a_frac=st.floats(0.0, 1.0),
        b_frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_instances(self, n, k_frac, a_frac, b_frac, seed):
        mach = Machine(memory=256, block=8)
        k = 2 + int(k_frac * (n // 2 - 2))
        a = max(1, int(a_frac * (n // k)))
        b = max(-(-n // k), a)
        b = b + int(b_frac * (n - 1 - b))
        if b >= n:
            b = n - 1
        if a * k > n or b * k < n or b < 1:
            return
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        pf = two_sided_partition(mach, f, k, a, b)
        check_partitioned(recs, pf, a, b, k)
        pf.free()

    def test_low_partitions_have_size_a(self):
        mach = Machine(memory=4096, block=64)
        n, k = 40_000, 32
        a, b = n // (4 * k), 4 * (n // k)
        recs = random_permutation(n, seed=7)
        f = load_input(mach, recs)
        pf = two_sided_partition(mach, f, k, a, b)
        k_prime = (b * k - n) // (b - a)
        assert pf.partition_sizes[:k_prime] == [a] * k_prime
        check_partitioned(recs, pf, a, b, k)

    def test_duplicates(self):
        mach = Machine(memory=256, block=8)
        recs = few_distinct(900, seed=8, n_distinct=4)
        f = load_input(mach, recs)
        pf = two_sided_partition(mach, f, 6, 30, 500)
        check_partitioned(recs, pf, 30, 500, 6)


class TestDispatchAndHygiene:
    def test_dispatch(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(400, seed=9)
        f = load_input(mach, recs)
        for a, b in [(50, 400), (0, 200), (40, 250)]:
            pf = approximate_partition(mach, f, 4, a, b)
            check_partitioned(recs, pf, a, b, 4)
            pf.free()

    def test_invalid_params(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=10))
        with pytest.raises(SpecError):
            approximate_partition(mach, f, 10, 11, 100)
        with pytest.raises(SpecError):
            approximate_partition(mach, f, 10, 0, 9)

    def test_no_leaks(self):
        mach = Machine(memory=4096, block=64)
        recs = random_permutation(30_000, seed=11)
        f = load_input(mach, recs)
        pf = two_sided_partition(mach, f, 16, 400, 8000)
        assert mach.memory.in_use == 0
        assert mach.memory.peak <= mach.M
        pf.free()
        assert mach.disk.live_blocks == f.num_blocks

"""Tests for repro.obs: span tracer, exporters, and the em-layer hooks.

The headline invariant — exclusive span costs sum *exactly* to the
machine's counters — is asserted differentially against the real
algorithms via the solver registry.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.em import Machine
from repro.em.records import make_records
from repro.obs import (
    Span,
    Tracer,
    build_instance,
    chrome_trace,
    render_span_tree,
    span_rollup,
    traces_to_dict,
)


def _mk(memory=64, block=8):
    return Machine(memory=memory, block=block)


def _traced_run(name):
    """Run a registry solver under an attached trace."""
    solver, machine, file, params = build_instance(name)
    tracer = Tracer()
    trace = tracer.attach(machine)
    try:
        solver.run(machine, file, params)
    finally:
        file.free()
        tracer.detach(machine)
    return machine, trace


class TestDifferential:
    @pytest.mark.parametrize("name", ["sort", "multiselect", "splitters", "partition"])
    def test_exclusive_sums_equal_machine_counters_exactly(self, name):
        machine, trace = _traced_run(name)
        spans = list(trace.root.walk())
        assert sum(s.reads for s in spans) == machine.io.reads
        assert sum(s.writes for s in spans) == machine.io.writes
        assert sum(s.comparisons for s in spans) == machine.comparisons
        # The same equality through the inclusive rollup at the root.
        assert trace.root.cum_io == machine.io.total

    def test_trees_are_hierarchical(self):
        machine, trace = _traced_run("partition")
        assert max(s.depth for s in trace.root.walk()) >= 3
        paths = {s.path for s in trace.root.walk()}
        assert any(p.count("/") >= 1 for p in paths)


class TestTracerUnit:
    def test_nested_spans_exclusive_attribution(self):
        mach = _mk()
        tracer = Tracer()
        trace = tracer.attach(mach)
        b1, b2 = mach.disk.allocate(2)
        recs = make_records(np.arange(8))
        with mach.phase("outer"):
            mach.disk.write(b1, recs)
            with mach.phase("inner"):
                mach.disk.read(b1)
                mach.charge_comparisons(5)
            mach.disk.write(b2, recs)
        mach.disk.read(b2)
        tracer.detach(mach)

        root = trace.root
        (outer,) = root.children
        (inner,) = outer.children
        assert (root.reads, root.writes) == (1, 0)
        assert (outer.reads, outer.writes) == (0, 2)
        assert (inner.reads, inner.writes, inner.comparisons) == (1, 0, 5)
        assert inner.path == "outer/inner" and inner.depth == 2
        assert root.cum_io == 4

    def test_peaks_propagate_to_parents(self):
        mach = _mk()
        tracer = Tracer()
        trace = tracer.attach(mach)
        with mach.phase("p"):
            with mach.phase("q"):
                mach.memory.lease(32, "x").release()
            mach.disk.allocate(3)
        tracer.detach(mach)
        (p,) = trace.root.children
        (q,) = p.children
        assert q.mem_peak >= 32
        assert p.mem_peak >= 32 and trace.root.mem_peak >= 32
        assert p.blocks_peak >= 3 and trace.root.blocks_peak >= 3

    def test_install_attaches_and_detaches(self):
        tracer = Tracer()
        with tracer.install():
            m = _mk()
            (bid,) = m.disk.allocate(1)
            with m.phase("a"):
                m.disk.write(bid, make_records(np.arange(8)))
        assert len(tracer.traces) == 1
        trace = tracer.traces[0]
        assert [c.name for c in trace.root.children] == ["a"]
        assert trace.root.cum_writes == 1
        # Detached on exit: later I/O is not recorded.
        m.disk.read(bid)
        assert trace.root.cum_reads == 0

    def test_install_keeps_manually_attached_machines(self):
        tracer = Tracer()
        outside = _mk()
        tracer.attach(outside)
        with tracer.install():
            _mk()
        # Only the machine built inside the body was detached.
        (bid,) = outside.disk.allocate(1)
        outside.disk.write(bid, make_records(np.arange(8)))
        assert tracer.traces[0].root.cum_writes == 1
        tracer.detach(outside)

    def test_double_attach_and_bad_detach_raise(self):
        mach = _mk()
        tracer = Tracer()
        tracer.attach(mach)
        with pytest.raises(ValueError, match="already attached"):
            tracer.attach(mach)
        tracer.detach(mach)
        with pytest.raises(ValueError, match="not attached"):
            tracer.detach(mach)

    def test_attach_mid_phase_ignores_foreign_pop(self):
        mach = _mk()
        tracer = Tracer()
        with mach.phase("pre"):
            trace = tracer.attach(mach)
        # The pop of "pre" (opened before attach) must not close root.
        assert trace.root.children == []
        with mach.phase("post"):
            pass
        tracer.detach(mach)
        assert [c.name for c in trace.root.children] == ["post"]

    def test_span_dict_round_trip(self):
        _, trace = _traced_run("splitters")
        rebuilt = Span.from_dict(json.loads(json.dumps(trace.root.to_dict())))
        assert rebuilt.to_dict() == trace.root.to_dict()


class TestExporters:
    def test_chrome_trace_shape_and_serializable(self):
        machine, trace = _traced_run("sort")
        doc = chrome_trace([trace])
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(metas) == 1
        assert len(slices) == sum(1 for _ in trace.root.walk())
        for e in slices:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert {
                "path", "reads", "writes", "io", "comparisons",
                "self_io", "mem_peak", "blocks_peak", "depth",
            } <= set(e["args"])
        root_slice = next(e for e in slices if e["args"]["depth"] == 0)
        assert root_slice["args"]["io"] == machine.io.total
        json.dumps(doc)  # must be JSON-clean (no numpy scalars)

    def test_render_span_tree_merges_siblings(self):
        machine, trace = _traced_run("sort")
        merged = render_span_tree(trace)
        assert "sort" in merged and "run-formation" in merged
        assert f"{machine.io.total:,} I/Os" in merged
        raw = render_span_tree(trace, merge=False)
        assert raw.count("run-formation") >= merged.count("run-formation")

    def test_span_rollup_is_a_lossless_decomposition(self):
        machine, trace = _traced_run("multiselect")
        rollup = span_rollup([trace])
        assert sum(v["reads"] for v in rollup.values()) == machine.io.reads
        assert sum(v["writes"] for v in rollup.values()) == machine.io.writes
        assert (
            sum(v["comparisons"] for v in rollup.values()) == machine.comparisons
        )
        assert "" in rollup  # the root path
        json.dumps(rollup)

    def test_traces_to_dict(self):
        machine, trace = _traced_run("splitters")
        (d,) = traces_to_dict([trace])
        assert d["M"] == machine.M and d["B"] == machine.B
        assert d["root"]["name"] == "(machine)"

    def test_render_span_tree_zero_spans(self):
        # Regression: an empty trace list used to crash on max() of an
        # empty sequence; it must degrade to a stub instead.
        assert render_span_tree([]) == "(no spans recorded)"

    def test_span_rollup_zero_spans(self):
        assert span_rollup([]) == {}


class TestMeasureFix:
    def test_measure_comparisons_and_no_by_phase_aliasing(self):
        mach = _mk()
        (bid,) = mach.disk.allocate(1)
        recs = make_records(np.arange(8))
        with mach.measure("m1") as cost:
            mach.disk.write(bid, recs)
            mach.charge_comparisons(7)
        mach.charge_comparisons(3)
        assert cost.comparisons == 7  # only the window's comparisons
        frozen = dict(cost.by_phase)
        assert frozen == {"m1": (0, 1)}
        # Re-entering the same phase later must not mutate the delta.
        with mach.phase("m1"):
            mach.disk.read(bid)
        assert cost.by_phase == frozen

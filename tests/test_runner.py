"""Tests for the parallel, cached experiment runner."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.base import Experiment, ExperimentResult, _REGISTRY
from repro.experiments.runner import (
    RESULTS_SCHEMA_VERSION,
    RunRecord,
    _cache_key,
    run_experiments,
    run_one,
    source_tree_hash,
    write_results_json,
)

#: Two of the cheapest registered experiments (quick mode runs in ~0.1s).
FAST_IDS = ["ABL4", "T1.R4"]


def _result(exp_id="T1.R1", passed=True):
    return ExperimentResult(
        exp_id=exp_id,
        title="t",
        claim="c",
        headers=["n", "io", "ratio", "who"],
        rows=[
            (np.int64(1000), 10, np.float64(1.5), "scan"),
            (2000, 20, 2.5, "sort"),
        ],
        checks=[("ok", passed)],
        notes=["note"],
    )


@pytest.fixture
def crash_experiment():
    """Temporarily register an experiment that always raises."""

    def run(quick=False):
        raise RuntimeError("boom")

    exp = Experiment("ZZ.CRASH", "always crashes", run)
    _REGISTRY[exp.exp_id] = exp
    yield exp.exp_id
    del _REGISTRY[exp.exp_id]


class TestRoundTrip:
    def test_result_round_trips_through_json_and_renders_identically(self):
        r = _result()
        r2 = ExperimentResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert r2.render() == r.render()
        assert r2.passed == r.passed
        assert r2.rows == [(1000, 10, 1.5, "scan"), (2000, 20, 2.5, "sort")]

    def test_numpy_scalars_coerced_to_plain_python(self):
        d = _result().to_dict()
        for row in d["rows"]:
            for v in row:
                assert type(v) in (int, float, str, bool)

    def test_record_round_trip(self):
        rec = RunRecord(
            exp_id="X",
            quick=True,
            wall_s=1.25,
            resources={"io_total": 3},
            result=_result("X"),
        )
        rec2 = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert rec2.exp_id == "X" and rec2.quick and rec2.wall_s == 1.25
        assert rec2.resources == {"io_total": 3}
        assert rec2.passed and rec2.result.render() == rec.result.render()

    def test_error_record_synthesizes_failing_result(self):
        rec = RunRecord(exp_id="X", quick=True, wall_s=0.0, error="boom")
        assert not rec.passed
        synthetic = rec.to_result()
        assert not synthetic.passed
        assert "boom" in synthetic.render()


class TestRunOne:
    def test_captures_result_and_resources(self):
        rec = RunRecord.from_dict(run_one("ABL4", True))
        assert rec.error is None and rec.passed
        assert rec.quick and rec.wall_s > 0
        res = rec.resources
        assert res["machines"] >= 1
        assert res["io_total"] == res["reads"] + res["writes"] > 0
        assert res["comparisons"] > 0
        assert res["peak_memory_records"] > 0
        assert res["peak_disk_blocks"] > 0

    def test_lifetime_resources_exceed_last_window(self):
        # Experiments reset live counters per sweep point; the record
        # must aggregate *lifetime* totals across all machines, so its
        # I/O total is at least any single measured window's.
        rec = RunRecord.from_dict(run_one("T1.R4", True))
        measured_io = [row[1] for row in rec.result.rows]
        assert rec.resources["io_total"] >= max(measured_io)

    def test_error_captured_not_raised(self, crash_experiment):
        rec = RunRecord.from_dict(run_one(crash_experiment, True))
        assert rec.error == "RuntimeError: boom"
        assert rec.result is None and not rec.passed


class TestRunExperiments:
    def test_unknown_id_raises_before_running(self):
        with pytest.raises(KeyError, match="BOGUS"):
            run_experiments(["BOGUS"], quick=True, cache=False)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_experiments(["ABL4", "ABL4"], quick=True, cache=False)

    def test_order_preserved_and_crash_does_not_abort_batch(
        self, tmp_path, crash_experiment
    ):
        ids = ["T1.R4", crash_experiment, "ABL4"]
        records = run_experiments(ids, quick=True, cache=False)
        assert [r.exp_id for r in records] == ids
        assert records[0].passed and records[2].passed
        assert records[1].error is not None

    def test_progress_called_per_experiment(self, tmp_path):
        seen = []
        run_experiments(
            FAST_IDS, quick=True, cache=True, cache_dir=tmp_path,
            progress=seen.append,
        )
        assert sorted(r.exp_id for r in seen) == sorted(FAST_IDS)
        assert all(not r.cached for r in seen)


class TestCache:
    def test_second_run_is_served_entirely_from_cache(self, tmp_path):
        first = run_experiments(FAST_IDS, quick=True, cache=True, cache_dir=tmp_path)
        assert all(not r.cached for r in first)
        second = run_experiments(FAST_IDS, quick=True, cache=True, cache_dir=tmp_path)
        assert all(r.cached for r in second)
        for a, b in zip(first, second):
            assert a.to_result().render() == b.to_result().render()

    def test_cache_disabled_writes_nothing(self, tmp_path):
        run_experiments(["ABL4"], quick=True, cache=False, cache_dir=tmp_path)
        assert not list(tmp_path.rglob("*.json"))

    def test_quick_and_full_do_not_share_entries(self):
        assert _cache_key("A", True, "h") != _cache_key("A", False, "h")

    def test_source_hash_invalidates_entries(self):
        assert _cache_key("A", True, "h1") != _cache_key("A", True, "h2")

    def test_source_tree_hash_is_stable_hex(self):
        h = source_tree_hash()
        assert h == source_tree_hash()
        assert len(h) == 64 and int(h, 16) >= 0

    def test_corrupt_cache_entry_is_ignored(self, tmp_path):
        run_experiments(["ABL4"], quick=True, cache=True, cache_dir=tmp_path)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        records = run_experiments(["ABL4"], quick=True, cache=True, cache_dir=tmp_path)
        assert not records[0].cached and records[0].passed

    def test_error_records_are_never_cached(self, tmp_path, crash_experiment):
        run_experiments([crash_experiment], quick=True, cache=True, cache_dir=tmp_path)
        records = run_experiments(
            [crash_experiment], quick=True, cache=True, cache_dir=tmp_path
        )
        assert not records[0].cached  # re-ran, no poisoned cache entry


class TestParallel:
    def test_parallel_matches_serial_and_preserves_order(self, tmp_path):
        serial = run_experiments(FAST_IDS, quick=True, jobs=1, cache=False)
        parallel = run_experiments(FAST_IDS, quick=True, jobs=2, cache=False)
        assert [r.exp_id for r in parallel] == FAST_IDS
        for s, p in zip(serial, parallel):
            assert s.result.to_dict() == p.result.to_dict()

    def test_parallel_populates_cache(self, tmp_path):
        run_experiments(FAST_IDS, quick=True, jobs=2, cache=True, cache_dir=tmp_path)
        second = run_experiments(
            FAST_IDS, quick=True, jobs=2, cache=True, cache_dir=tmp_path
        )
        assert all(r.cached for r in second)


class TestSpans:
    def test_run_one_embeds_a_lossless_span_rollup(self):
        rec = RunRecord.from_dict(run_one("ABL4", True))
        assert rec.spans, "runner must record a span rollup"
        assert sum(v["io"] for v in rec.spans.values()) == rec.resources["io_total"]
        assert (
            sum(v["comparisons"] for v in rec.spans.values())
            == rec.resources["comparisons"]
        )

    def test_spans_survive_process_pool_and_results_json(self, tmp_path):
        records = run_experiments(FAST_IDS, quick=True, jobs=2, cache=False)
        path = write_results_json(records, tmp_path / "results.json", jobs=2)
        data = json.loads(path.read_text())
        for entry, rec in zip(data["experiments"], records):
            assert entry["spans"] == rec.spans
            assert (
                sum(v["io"] for v in entry["spans"].values())
                == entry["resources"]["io_total"]
            )
            round_tripped = RunRecord.from_dict(entry)
            assert round_tripped.spans == rec.spans

    def test_observe_machines_is_reentrant_with_tracer_install(self):
        # The runner stacks a machine collector and a tracer on the same
        # hook; both must see every machine, and unwinding one context
        # must not disturb the other.
        from repro.em.machine import Machine, observe_machines
        from repro.obs import Tracer

        outer, inner = [], []
        tracer = Tracer()
        with observe_machines(outer.append):
            with tracer.install():
                with observe_machines(inner.append):
                    m1 = Machine(memory=64, block=8)
                m2 = Machine(memory=64, block=8)
            m3 = Machine(memory=64, block=8)
        assert outer == [m1, m2, m3]
        assert inner == [m1]
        assert len(tracer.traces) == 2  # m1 and m2, not m3


class TestResultsJson:
    def test_schema(self, tmp_path):
        records = run_experiments(FAST_IDS, quick=True, cache=False)
        path = write_results_json(records, tmp_path / "results.json", jobs=1)
        data = json.loads(path.read_text())
        assert data["schema"] == RESULTS_SCHEMA_VERSION
        assert data["quick"] and data["passed"] and data["jobs"] == 1
        assert data["src_hash"] == source_tree_hash()
        assert [e["exp_id"] for e in data["experiments"]] == FAST_IDS
        for entry in data["experiments"]:
            assert entry["result"]["checks"]
            assert entry["resources"]["io_total"] > 0
            assert entry["wall_s"] > 0

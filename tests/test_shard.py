"""Tests for the sharded coordinator/worker service (``repro.shard``).

Covers the charged-communication primitive (``em.wire``), the transport
endpoints, the differential guarantee (sharded answers element-identical
to the single-machine engine across shard counts, kernels, and sanitize
mode, with counter conservation under the tracer), worker-failure
behavior, real process workers, the shard-skew trace generator, and the
R7 isolation lint rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import multi_select
from repro.em import Machine, composite
from repro.em.errors import SpecError
from repro.em.wire import (
    RECV_PHASE,
    SEND_PHASE,
    WORDS_PER_RECORD,
    charge_recv,
    charge_send,
    message_blocks,
    payload_words,
)
from repro.lint import get_rules, lint_source
from repro.obs import MetricsRegistry, Tracer, metrics_scope
from repro.service import LazyPartitionIndex, Query, QueryFrontend
from repro.shard import (
    InProcTransport,
    Message,
    SerializedTransport,
    ShardError,
    build_sharded_service,
)
from repro.workloads import load_input
from repro.workloads.generators import random_permutation
from repro.workloads.queries import QUERY_TRACES, shard_skew_trace

from .conftest import records_from_keys


# ----------------------------------------------------------------------
# em.wire — the charging primitive
# ----------------------------------------------------------------------
class TestWire:
    def test_payload_words_units(self):
        recs = records_from_keys(range(5))
        assert payload_words(recs) == WORDS_PER_RECORD * 5
        assert payload_words(np.arange(7, dtype=np.int64)) == 7
        assert payload_words(None) == 1
        assert payload_words(3) == 1
        assert payload_words(2.5) == 1
        assert payload_words("abcdefgh") == 1
        assert payload_words("abcdefghi") == 2
        assert payload_words(("select", np.arange(4))) == 5
        assert payload_words({"a": 1, "bb": (2, 3)}) == 5

    def test_payload_words_rejects_unchargeable(self):
        with pytest.raises(TypeError):
            payload_words(object())

    def test_message_blocks(self):
        # B = 8 records carry 3*8 = 24 payload words per block.
        assert message_blocks(0, 8) == 1  # envelope floor
        assert message_blocks(24, 8) == 1
        assert message_blocks(25, 8) == 2
        with pytest.raises(ValueError):
            message_blocks(-1, 8)
        with pytest.raises(ValueError):
            message_blocks(10, 0)

    def test_charge_send_pays_block_writes(self, small_machine):
        m = small_machine
        r0, w0 = m.io.reads, m.io.writes
        charge_send(m, 3, SEND_PHASE)
        assert m.io.writes == w0 + 3
        assert m.io.reads == r0

    def test_charge_recv_pays_block_reads_only(self, small_machine):
        m = small_machine
        lw0 = m.disk.lifetime.writes
        r0, w0 = m.io.reads, m.io.writes
        charge_recv(m, 2, RECV_PHASE)
        assert m.io.reads == r0 + 2
        assert m.io.writes == w0
        # The arrival write is uncounted — invisible even to lifetime
        # counters, so tracer conservation holds.
        assert m.disk.lifetime.writes == lw0

    def test_charges_conserve_under_sanitize_tracer(self):
        m = Machine(memory=256, block=8, sanitize=True)
        tracer = Tracer()
        tracer.attach(m)
        charge_send(m, 2)
        charge_recv(m, 2)
        tracer.detach(m)  # raises CounterConservationError on drift
        m.close()


# ----------------------------------------------------------------------
# Transports and endpoints
# ----------------------------------------------------------------------
class TestTransport:
    def _machines(self):
        return Machine(memory=256, block=8), Machine(memory=256, block=8)

    def test_both_endpoints_charged(self):
        coord, work = self._machines()
        link = InProcTransport(0)
        ce, we = link.coordinator_end(coord), link.worker_end(work)
        payload = np.arange(100, dtype=np.int64)
        blocks = message_blocks(payload_words(("ping", payload, None)), 8)
        assert blocks > 1  # a multi-block message, not just the envelope

        w0 = coord.io.writes
        ce.send(Message("ping", payload))
        assert coord.io.writes == w0 + blocks  # sender pays writes

        r0 = work.io.reads
        got = we.recv()
        assert work.io.reads == r0 + blocks  # receiver pays reads
        assert got.kind == "ping" and np.array_equal(got.payload, payload)
        assert got.shard == 0 and got.seq == 0

    def test_serialized_transport_charges_identically(self):
        recs = records_from_keys(range(40))
        messages = [
            Message("ingest", recs),
            Message("select", np.arange(1, 9, dtype=np.int64)),
            Message("range_count", (3, 17)),
        ]
        counters = []
        for cls in (InProcTransport, SerializedTransport):
            coord, work = self._machines()
            link = cls(1)
            ce, we = link.coordinator_end(coord), link.worker_end(work)
            for msg in messages:
                ce.send(msg)
                got = we.recv()
                assert got.kind == msg.kind
            counters.append(
                (coord.io.reads, coord.io.writes, work.io.reads, work.io.writes)
            )
        assert counters[0] == counters[1]

    def test_serialized_payload_round_trips(self):
        coord, work = self._machines()
        link = SerializedTransport(0)
        ce, we = link.coordinator_end(coord), link.worker_end(work)
        recs = records_from_keys([5, 1, 9])
        ce.send(Message("ingest", recs))
        got = we.recv()
        assert np.array_equal(composite(got.payload), composite(recs))

    def test_sequence_gap_raises_shard_error(self):
        coord, work = self._machines()
        link = InProcTransport(0)
        ce, we = link.coordinator_end(coord), link.worker_end(work)
        ce.send(Message("a"))
        ce.send(Message("b"))
        link._to_worker.popleft()  # a transport bug drops message 0
        with pytest.raises(ShardError, match="expected message seq 0"):
            we.recv()

    def test_endpoint_metrics(self):
        registry = MetricsRegistry()
        with metrics_scope(registry):
            coord, work = self._machines()
            link = InProcTransport(2)
            ce, we = link.coordinator_end(coord), link.worker_end(work)
            ce.send(Message("ping"))
            we.recv()
        fams = registry.to_dict()
        sent = fams["svc_shard_msgs"]["children"]["shard=2,direction=send"]
        recv = fams["svc_shard_msgs"]["children"]["shard=2,direction=recv"]
        assert sent["value"] == 1 and recv["value"] == 1
        words = payload_words(("ping", None, None))
        nbytes = fams["svc_shard_bytes"]["children"]["shard=2,direction=send"]
        assert nbytes["value"] == 8 * words


# ----------------------------------------------------------------------
# Differential: sharded == single machine
# ----------------------------------------------------------------------
def _reference_select(records: np.ndarray, ranks: np.ndarray) -> np.ndarray:
    """Offline multi-selection ground truth on a fresh machine."""
    mach = Machine(memory=512, block=16)
    f = load_input(mach, records)
    unique, inverse = np.unique(ranks, return_inverse=True)
    out = multi_select(mach, f, unique)[inverse]
    f.free()
    return out


class TestDifferential:
    N, K, Q = 4096, 32, 48

    @pytest.mark.parametrize("kernel", ["numpy_v1", "vectorized_v2"])
    @pytest.mark.parametrize("w", [1, 2, 4, 8])
    def test_sharded_matches_single_machine(self, w, kernel):
        records = random_permutation(self.N, seed=11)
        trace = QUERY_TRACES["zipfian"](self.Q, self.N, seed=11, alpha=1.2)
        queries = [Query.select(int(r)) for r in trace]
        expected = composite(_reference_select(records, trace))

        # Sanitize mode + tracer: detach verifies counter conservation
        # on the coordinator and every labeled shard machine.
        with Tracer().install() as tracer:
            coord = Machine(memory=512, block=16, kernel=kernel, sanitize=True)
            f = load_input(coord, records)
            coord.reset_counters()
            with build_sharded_service(coord, f, shards=w, k=self.K) as router:
                assert router.nshards == w
                assert router.n_live == self.N
                assert sum(router.shard_sizes) == self.N
                answers = QueryFrontend(coord, router).run(queries, batch=16)
                # range_count merges per-shard bucket counts; keys are a
                # permutation of 0..N-1, so ground truth is arithmetic.
                assert router.range_count(100, 2000) == 1900
                assert router.range_count(-1, self.N) == self.N
                stats = router.shard_io_stats()
            assert coord.io.total > 0  # communication was charged
            f.free()
            coord.close()
        got = composite(np.array(answers, dtype=records.dtype))
        assert np.array_equal(got, expected)
        assert sum(s["n"] for s in stats) == self.N
        labels = {t.label for t in tracer.traces}
        assert {f"shard-{i}" for i in range(w)} <= labels

    def test_io_stats_match_worker_machines(self):
        records = random_permutation(1024, seed=5)
        coord = Machine(memory=512, block=16)
        f = load_input(coord, records)
        with build_sharded_service(coord, f, shards=3, k=16) as router:
            router.batch_select(np.arange(1, 40, dtype=np.int64))
            stats = router.shard_io_stats()
            # Tests may reach into the pool; shard/ code may not (R7).
            for s, worker in zip(stats, router._pool._workers):
                m = worker._machine
                # The snapshot precedes the reply's own send charge, so
                # live writes are exactly one reply transmission ahead.
                assert s["lifetime_reads"] == m.disk.lifetime.reads
                sent = m.disk.lifetime.writes - s["lifetime_writes"]
                assert 1 <= sent <= 2
                assert s["kernel"] == m.kernel.name
        f.free()
        coord.close()

    def test_transport_choice_does_not_change_costs(self):
        records = random_permutation(1024, seed=5)
        totals = []
        for transport in ("inproc", "serialized"):
            coord = Machine(memory=512, block=16)
            f = load_input(coord, records)
            coord.reset_counters()
            with build_sharded_service(
                coord, f, shards=4, k=16, transport=transport
            ) as router:
                router.batch_select(np.arange(1, 100, dtype=np.int64))
                stats = router.shard_io_stats()
            totals.append((
                coord.io.total,
                tuple((s["lifetime_reads"], s["lifetime_writes"]) for s in stats),
            ))
            f.free()
            coord.close()
        assert totals[0] == totals[1]

    def test_splitter_candidates_merged_and_sorted(self):
        records = random_permutation(2048, seed=9)
        coord = Machine(memory=512, block=16)
        f = load_input(coord, records)
        with build_sharded_service(coord, f, shards=4, k=16) as router:
            cands = router.splitter_candidates(8)
            comps = composite(cands)
            assert len(cands) == 8
            assert np.all(np.diff(comps) >= 0)
        f.free()
        coord.close()

    def test_build_rejects_bad_parameters(self):
        coord = Machine(memory=512, block=16)
        f = load_input(coord, random_permutation(128, seed=0))
        with pytest.raises(SpecError):
            build_sharded_service(coord, f, shards=0, k=8)
        with pytest.raises(SpecError):
            build_sharded_service(coord, f, shards=2, k=0)
        f.free()
        coord.close()


# ----------------------------------------------------------------------
# Chaos: killed workers fail cleanly
# ----------------------------------------------------------------------
class TestChaos:
    def test_killed_worker_raises_and_close_is_clean(self):
        records = random_permutation(1024, seed=3)
        coord = Machine(memory=512, block=16, sanitize=True)
        f = load_input(coord, records)
        router = build_sharded_service(coord, f, shards=4, k=16)
        router._pool.kill(2)
        with pytest.raises(ShardError, match="shard 2"):
            router.shard_io_stats()
        # Shutdown skips the dead shard; the coordinator leaks nothing.
        router.close()
        f.free()
        coord.close()  # sanitize-mode lease-leak check fires here

    def test_killed_process_worker_raises_and_close_is_clean(self):
        records = random_permutation(512, seed=3)
        coord = Machine(memory=512, block=16)
        f = load_input(coord, records)
        router = build_sharded_service(
            coord, f, shards=2, k=8, workers="process"
        )
        router._pool.kill(1)
        with pytest.raises(ShardError, match="shard 1"):
            for _ in range(4):  # first requests may still drain the pipe
                router.shard_io_stats()
        router.close()
        f.free()
        coord.close()


# ----------------------------------------------------------------------
# Process workers: identical model costs
# ----------------------------------------------------------------------
class TestProcessWorkers:
    def test_process_workers_match_inproc(self):
        records = random_permutation(2048, seed=7)
        trace = QUERY_TRACES["zipfian"](32, 2048, seed=7, alpha=1.1)
        queries = [Query.select(int(r)) for r in trace]
        runs = {}
        for workers in ("inproc", "process"):
            coord = Machine(memory=512, block=16)
            f = load_input(coord, records)
            coord.reset_counters()
            with build_sharded_service(
                coord, f, shards=2, k=16, workers=workers
            ) as router:
                answers = QueryFrontend(coord, router).run(queries, batch=16)
                stats = router.shard_io_stats()
            runs[workers] = (
                composite(np.array(answers, dtype=records.dtype)),
                coord.io.total,
                tuple(
                    (s["lifetime_reads"], s["lifetime_writes"], s["n"])
                    for s in stats
                ),
            )
            f.free()
            coord.close()
        assert np.array_equal(runs["inproc"][0], runs["process"][0])
        assert runs["inproc"][1] == runs["process"][1]
        assert runs["inproc"][2] == runs["process"][2]


# ----------------------------------------------------------------------
# Shard-skew trace generator
# ----------------------------------------------------------------------
class TestShardSkewTrace:
    def test_deterministic_and_in_range(self):
        a = shard_skew_trace(64, 4096, seed=3, shards=8)
        b = shard_skew_trace(64, 4096, seed=3, shards=8)
        assert np.array_equal(a, b)
        assert a.dtype == np.int64
        assert a.min() >= 1 and a.max() <= 4096
        assert not np.array_equal(a, shard_skew_trace(64, 4096, seed=4, shards=8))

    def test_pinned_regression(self):
        # Byte-level determinism guard: these values may only change with
        # an intentional, documented generator change.
        a = shard_skew_trace(64, 4096, seed=3, shards=8)
        assert list(a[:8]) == [3124, 4031, 3249, 2338, 2124, 2542, 1266, 3073]

    def test_skews_toward_few_stripes(self):
        t = shard_skew_trace(512, 8192, seed=0, shards=8, alpha=1.4)
        stripe = (t - 1) * 8 // 8192
        counts = np.bincount(stripe, minlength=8)
        assert counts.max() >= 3 * np.sort(counts)[3]  # top stripe dominates

    def test_registered_in_query_traces(self):
        assert "shard-skew" in QUERY_TRACES


# ----------------------------------------------------------------------
# R7 — shard isolation lint rule
# ----------------------------------------------------------------------
R7 = get_rules(["R7"])


def _lint(source: str, relpath: str):
    active, suppressed = lint_source(source, relpath, R7)
    return active, suppressed


class TestR7:
    PATH = "src/repro/shard/router.py"

    def test_flags_foreign_machine_access(self):
        src = "def f(worker):\n    return worker.machine.io.reads\n"
        active, _ = _lint(src, self.PATH)
        assert len(active) == 1 and active[0].rule == "R7"

    def test_self_state_is_exempt(self):
        src = (
            "class A:\n"
            "    def f(self):\n"
            "        return self.machine\n"
        )
        active, _ = _lint(src, self.PATH)
        assert active == []

    def test_transport_module_is_exempt(self):
        src = "def f(worker):\n    return worker.machine\n"
        active, _ = _lint(src, "src/repro/shard/transport.py")
        assert active == []

    def test_other_subsystems_are_exempt(self):
        src = "def f(worker):\n    return worker.machine\n"
        active, _ = _lint(src, "src/repro/service/online.py")
        assert active == []

    def test_per_line_suppression(self):
        src = (
            "def f(worker):\n"
            "    return worker.disk  # emlint: disable=R7\n"
        )
        active, suppressed = _lint(src, self.PATH)
        assert active == []
        assert len(suppressed) == 1 and suppressed[0].rule == "R7"

"""Tests for the online partition service (repro.service).

Covers the eager :class:`PartitionIndex` (build, queries, updates,
rebalancing, rebuild), the lazy :class:`LazyPartitionIndex` (refinement,
caching, memory-pressure eviction), the batching
:class:`QueryFrontend`, and — throughout — *differential* identity: the
service's answers must be element-for-element what sorting (or an
offline multi-selection) would produce, including across update and
rebalance boundaries.
"""

import numpy as np
import pytest

from repro.em import Machine, SpecError, make_records
from repro.em.records import composite
from repro.service import (
    DeltaBuffer,
    LazyPartitionIndex,
    PartitionIndex,
    Query,
    QueryFrontend,
)
from repro.workloads import load_input, random_permutation, uniform_random
from repro.workloads.queries import (
    QUERY_TRACES,
    adversarial_trace,
    mixed_query_trace,
    uniform_trace,
    zipfian_trace,
)


def _machine():
    return Machine(memory=4096, block=64)


def _build_eager(n=8000, k=16, seed=1, gen=random_permutation, **kw):
    mach = _machine()
    recs = gen(n, seed=seed)
    f = load_input(mach, recs)
    index = PartitionIndex.build(mach, f, k, **kw)
    f.free()
    return mach, recs, index


def _sorted_keys(recs):
    return np.sort(recs["key"])


class TestPartitionIndex:
    def test_build_and_full_rank_sweep(self):
        mach, recs, index = _build_eager()
        keys = _sorted_keys(recs)
        got = index.batch_select(np.arange(1, len(recs) + 1))
        assert np.array_equal(got["key"], keys)
        # Output of a batch is rank-ordered, hence composite-sorted.
        assert np.all(np.diff(composite(got)) > 0)
        index.check_invariants()
        index.close()

    def test_duplicate_and_unsorted_ranks_align(self):
        mach, recs, index = _build_eager()
        keys = _sorted_keys(recs)
        ranks = np.array([500, 1, 500, 8000, 250, 1], dtype=np.int64)
        got = index.batch_select(ranks)
        assert np.array_equal(got["key"], keys[ranks - 1])
        index.close()

    def test_range_count_and_partition_of(self):
        mach, recs, index = _build_eager(gen=uniform_random)
        keys = _sorted_keys(recs)
        for lo, hi in [(0, 10**9), (100, 5000), (5000, 5000)]:
            true = int(((keys > lo) & (keys <= hi)).sum())
            assert index.range_count(lo, hi) == true
        with pytest.raises(SpecError):
            index.range_count(10, 5)
        j = index.partition_of(int(keys[0]))
        assert 0 <= j < index.num_partitions
        index.close()

    def test_quantile_edges(self):
        mach, recs, index = _build_eager()
        keys = _sorted_keys(recs)
        assert int(index.quantile(0.0)["key"]) == keys[0]
        assert int(index.quantile(1.0)["key"]) == keys[-1]
        with pytest.raises(SpecError):
            index.quantile(1.5)
        index.close()

    def test_select_out_of_range(self):
        mach, recs, index = _build_eager(n=100, k=4)
        with pytest.raises(SpecError):
            index.select(0)
        with pytest.raises(SpecError):
            index.select(101)
        index.close()

    def test_context_manager_releases_memory(self):
        mach = _machine()
        f = load_input(mach, random_permutation(2000, seed=3))
        with PartitionIndex.build(mach, f, 8) as index:
            index.select(7)
        f.free()
        assert mach.memory.in_use == 0


class TestDegenerateInputs:
    def test_empty_file(self):
        mach = _machine()
        f = load_input(mach, make_records(np.array([], dtype=np.int64)))
        with PartitionIndex.build(mach, f, 4) as index:
            assert index.n_live == 0
            assert index.range_count(0, 10**9) == 0
            assert index.partition_of(5) == 0
            with pytest.raises(SpecError):
                index.select(1)
            with pytest.raises(SpecError):
                index.quantile(0.5)
        f.free()

    def test_grow_from_empty(self):
        mach = _machine()
        f = load_input(mach, make_records(np.array([], dtype=np.int64)))
        with PartitionIndex.build(mach, f, 4) as index:
            index.append(np.arange(100))
            assert index.n_live == 100
            got = index.batch_select(np.arange(1, 101))
            assert np.array_equal(got["key"], np.arange(100))
            index.check_invariants()
        f.free()

    def test_fewer_records_than_k(self):
        mach = _machine()
        f = load_input(mach, make_records(np.array([5, 3, 9], dtype=np.int64)))
        with PartitionIndex.build(mach, f, 64) as index:
            assert index.n_live == 3
            assert [int(index.select(r)["key"]) for r in (1, 2, 3)] == [3, 5, 9]
            assert int(index.quantile(0.0)["key"]) == 3
            assert int(index.quantile(1.0)["key"]) == 9
            index.check_invariants()
        f.free()

    def test_all_equal_keys(self):
        mach = _machine()
        keys = np.full(500, 7, dtype=np.int64)
        f = load_input(mach, make_records(keys))
        with PartitionIndex.build(mach, f, 8) as eager:
            got = eager.batch_select(np.arange(1, 501))
            assert np.all(got["key"] == 7)
            assert len(np.unique(got["uid"])) == 500  # distinct elements
            assert eager.range_count(6, 7) == 500
            assert eager.range_count(7, 8) == 0
        with LazyPartitionIndex(mach, f, k=8) as lazy:
            got = lazy.batch_select(np.arange(1, 501))
            assert np.all(got["key"] == 7)
            assert lazy.range_count(6, 7) == 500
        f.free()
        assert mach.memory.in_use == 0


class TestUpdates:
    def test_append_then_query_reflects_updates(self):
        mach, recs, index = _build_eager(n=2000, k=8)
        index.append(np.array([-5, -6, -7]))
        # Queries flush the buffer automatically.
        assert int(index.select(1)["key"]) == -7
        assert index.n_live == 2003
        index.check_invariants()
        index.close()

    def test_delete_and_missing_delete_raises(self):
        mach, recs, index = _build_eager(n=2000, k=8)
        keys = _sorted_keys(recs)
        index.delete(int(keys[0]))
        assert int(index.select(1)["key"]) == keys[1]
        index.delete(10**8)
        with pytest.raises(SpecError, match="no live element"):
            index.flush_updates()
        index.close()

    def test_hot_appends_force_split(self):
        mach, recs, index = _build_eager(n=4000, k=16)
        k0 = index.num_partitions
        index.append(np.full(600, 42, dtype=np.int64))
        index.flush_updates()
        assert index.stats["splits"] >= 1
        assert index.num_partitions > k0
        index.check_invariants()
        index.close()

    def test_mass_deletes_force_merge(self):
        mach, recs, index = _build_eager(n=4000, k=16)
        keys = _sorted_keys(recs)
        for key in keys[:420]:
            index.delete(int(key))
        index.flush_updates()
        assert index.stats["merges"] >= 1
        index.check_invariants()
        assert int(index.select(1)["key"]) == keys[420]
        index.close()

    def test_churn_triggers_rebuild(self):
        mach, recs, index = _build_eager(n=2000, k=8, rebuild_threshold=0.5)
        index.append(np.arange(10**6, 10**6 + 1200))
        index.flush_updates()
        assert index.stats["rebuilds"] >= 1
        index.check_invariants()
        index.close()

    def test_differential_across_update_and_rebalance_boundaries(self):
        """Ground-truth key multiset equality through appends, deletes,
        splits, merges, and rebuilds."""
        mach, recs, index = _build_eager(n=3000, k=12, rebuild_threshold=0.4)
        truth = sorted(int(k) for k in recs["key"])
        rng = np.random.default_rng(9)
        for step in range(6):
            new = rng.integers(0, 10**6, size=150).astype(np.int64)
            index.append(new)
            truth.extend(int(k) for k in new)
            truth.sort()
            for _ in range(40):
                victim = truth.pop(int(rng.integers(len(truth))))
                index.delete(victim)
            got = index.batch_select(np.arange(1, len(truth) + 1))
            assert list(got["key"]) == truth, f"diverged at step {step}"
            assert np.all(np.diff(composite(got)) > 0)
            index.check_invariants()
        assert index.stats["splits"] + index.stats["rebuilds"] >= 1
        index.close()

    def test_delta_buffer_capacity_autoflush(self):
        mach, recs, index = _build_eager(n=2000, k=8)
        index._delta = DeltaBuffer(index, capacity=10)
        index.append(np.arange(25))
        assert len(index._delta) < 10  # flushed at least once
        assert index.n_live == 2025
        index.close()


class TestLazyIndex:
    def test_matches_offline_multiselect(self):
        from repro.core import multi_select

        mach = _machine()
        recs = random_permutation(20_000, seed=11)
        f = load_input(mach, recs)
        trace = zipfian_trace(200, 20_000, seed=2)
        with LazyPartitionIndex(mach, f, k=32) as lazy:
            got = lazy.batch_select(trace)
        unique, inverse = np.unique(trace, return_inverse=True)
        expected = multi_select(mach, f, unique)[inverse]
        assert np.array_equal(composite(got), composite(expected))
        f.free()

    def test_input_file_left_intact(self):
        mach = _machine()
        recs = random_permutation(5000, seed=12)
        f = load_input(mach, recs)
        before = f.num_blocks
        with LazyPartitionIndex(mach, f, k=8) as lazy:
            lazy.batch_select(np.array([1, 2500, 5000]))
        assert f.num_blocks == before
        assert np.array_equal(f.read_range(0, 1)["key"][:5], recs["key"][:5])
        f.free()
        assert mach.memory.in_use == 0

    def test_repeats_amortize(self):
        mach = _machine()
        f = load_input(mach, random_permutation(20_000, seed=13))
        with LazyPartitionIndex(mach, f, k=32) as lazy:
            mach.reset_counters()
            lazy.batch_select(np.array([777]))
            first = mach.io.total
            mach.reset_counters()
            lazy.batch_select(np.array([777]))
            second = mach.io.total
        assert second == 0  # cached answer
        assert first > 0
        f.free()

    def test_range_count_without_refinement(self):
        mach = _machine()
        recs = uniform_random(10_000, seed=14)
        f = load_input(mach, recs)
        keys = _sorted_keys(recs)
        with LazyPartitionIndex(mach, f, k=16) as lazy:
            refinements0 = lazy.stats["refinements"]
            true = int(((keys > 100) & (keys <= 90_000)).sum())
            assert lazy.range_count(100, 90_000) == true
            assert lazy.stats["refinements"] == refinements0
        f.free()

    def test_cache_evicted_under_memory_pressure(self):
        """A full answer cache yields memory back to leaf loads instead
        of deadlocking refinement (the feedback-spiral regression)."""
        mach = Machine(memory=512, block=16)
        f = load_input(mach, random_permutation(20_000, seed=15))
        trace = zipfian_trace(400, 20_000, seed=3)
        with LazyPartitionIndex(mach, f, k=64) as lazy:
            frontend = QueryFrontend(mach, lazy)
            answers = frontend.run([Query.select(int(r)) for r in trace])
            assert len(answers) == 400
        f.free()
        assert mach.memory.in_use == 0


class TestQueryFrontend:
    def test_mixed_trace_and_coalescing(self):
        mach, recs, index = _build_eager(gen=uniform_random)
        keys = _sorted_keys(recs)
        frontend = QueryFrontend(mach, index)
        trace = mixed_query_trace(60, 8000, seed=4, key_range=int(keys[-1]))
        answers = frontend.run(trace, batch=16)
        assert len(answers) == 60
        for query, ans in zip(trace, answers):
            if query[0] == "select":
                assert int(ans["key"]) == keys[query[1] - 1]
            elif query[0] == "range_count":
                lo, hi = query[1], query[2]
                assert ans == int(((keys > lo) & (keys <= hi)).sum())
        assert frontend.total_queries == 60
        assert frontend.amortized_io > 0
        index.close()

    def test_duplicate_selects_collapse(self):
        mach, recs, index = _build_eager()
        frontend = QueryFrontend(mach, index)
        for _ in range(10):
            frontend.select(4000)
        frontend.quantile(0.5)  # same rank as select 4000
        answers = frontend.flush()
        stats = frontend.flushes[-1]
        assert stats.queries == 11
        assert stats.select_ranks == 11
        assert stats.distinct_ranks == 1
        assert len({int(a["uid"]) for a in answers}) == 1
        index.close()

    def test_queries_interleaved_with_rebalancing_updates(self):
        """Frontend answers stay truthful while updates force splits."""
        mach, recs, index = _build_eager(n=3000, k=12)
        truth = sorted(int(k) for k in recs["key"])
        frontend = QueryFrontend(mach, index)
        for round_ in range(3):
            hot = 10**5 + round_
            index.append(np.full(250, hot, dtype=np.int64))
            truth.extend([hot] * 250)
            truth.sort()
            frontend.select(1)
            frontend.select(len(truth))
            frontend.quantile(0.5)
            first, last, mid = frontend.flush()
            assert int(first["key"]) == truth[0]
            assert int(last["key"]) == truth[-1]
            assert int(mid["key"]) == truth[-(-len(truth) // 2) - 1]
        assert index.stats["splits"] >= 1
        index.check_invariants()
        index.close()

    def test_quantile_on_empty_engine_raises(self):
        mach = _machine()
        f = load_input(mach, make_records(np.array([], dtype=np.int64)))
        with PartitionIndex.build(mach, f, 4) as index:
            frontend = QueryFrontend(mach, index)
            frontend.quantile(0.5)
            with pytest.raises(SpecError):
                frontend.flush()
        f.free()

    def test_coerce_rejects_unknown_kind(self):
        with pytest.raises(SpecError):
            Query.coerce(("argmax", 3))
        with pytest.raises(SpecError):
            QueryFrontend(_machine(), None).run([], batch=0)


class TestQueryTraces:
    def test_traces_in_range_and_deterministic(self):
        n = 10_000
        for name, fn in QUERY_TRACES.items():
            t1, t2 = fn(64, n, seed=5), fn(64, n, seed=5)
            assert np.array_equal(t1, t2), name
            assert t1.min() >= 1 and t1.max() <= n, name
            assert len(t1) == 64, name

    def test_zipfian_is_skewed_uniform_is_not(self):
        n = 10**6
        z = zipfian_trace(512, n, seed=6, alpha=1.1)
        u = uniform_trace(512, n, seed=6)
        assert len(np.unique(z)) < len(np.unique(u))

    def test_adversarial_covers_evenly(self):
        t = adversarial_trace(64, 10_000, seed=7)
        assert len(np.unique(t)) == 64
        gaps = np.diff(np.sort(t))
        assert gaps.max() <= 2 * (10_000 // 64)

    def test_zipfian_extreme_draws_stay_in_range(self):
        # Regression: heavy-tail zipf draws used to overflow int64 in
        # `(ids - 1) * _SCATTER`, folding hot ids onto negative ranks.
        # alpha barely above 1 makes multi-billion draws routine; every
        # rank must still land in [1, n] and agree with exact (Python
        # big-int) modular arithmetic.
        from repro.workloads.queries import _SCATTER, _rng

        n = 10_000
        q = 4096
        alpha = 1.01
        t = zipfian_trace(q, n, seed=123, alpha=alpha)
        assert t.min() >= 1 and t.max() <= n
        ids = _rng(123).zipf(alpha, size=q).astype(np.int64)
        expected = np.array(
            [(int(i) - 1) * _SCATTER % n + 1 for i in ids], dtype=np.int64
        )
        assert np.array_equal(t, expected)
        # The seed must actually exercise the overflow regime.
        assert int(ids.max()) * _SCATTER > np.iinfo(np.int64).max

"""Unit and property tests for deterministic sampling and pivot finding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alg.sampling import (
    approx_quantile_pivots,
    chunk_samples_to_disk,
    max_distribution_fanout,
    pick_pivots_from_sorted,
    pivot_rank_error_bound,
)
from repro.em import Machine, composite
from repro.em.records import make_records, sort_records
from repro.workloads import load_input, random_permutation


class TestPickPivots:
    def test_even_spacing(self):
        data = sort_records(make_records(np.arange(100)))
        p = pick_pivots_from_sorted(data, 3)
        assert list(p["key"]) == [24, 49, 74]

    def test_fewer_when_short(self):
        data = sort_records(make_records(np.arange(2)))
        p = pick_pivots_from_sorted(data, 10)
        assert 1 <= len(p) <= 2

    def test_empty(self):
        data = make_records(np.array([], dtype=np.int64))
        assert len(pick_pivots_from_sorted(data, 5)) == 0

    def test_zero_pivots(self):
        data = sort_records(make_records(np.arange(10)))
        assert len(pick_pivots_from_sorted(data, 0)) == 0

    def test_pivots_sorted_distinct(self):
        data = sort_records(make_records(np.arange(1000)))
        p = pick_pivots_from_sorted(data, 31)
        comps = composite(p)
        assert np.all(np.diff(comps) > 0)


class TestChunkSamples:
    def test_sample_count_and_order(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(2000, seed=1)
        f = load_input(mach, recs)
        sample_file, q = chunk_samples_to_disk(mach, f, per_chunk=16)
        samples = sample_file.to_numpy()
        # Chunks of 240 records with per_chunk=16 -> uniform spacing 15.
        assert q == 15
        n_chunks = -(-2000 // 240)
        assert 0 < len(samples) <= 2000 // q + n_chunks

    def test_samples_are_input_elements(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(1000, seed=2)
        f = load_input(mach, recs)
        sample_file, _ = chunk_samples_to_disk(mach, f, per_chunk=8)
        sample_comps = set(composite(sample_file.to_numpy()).tolist())
        all_comps = set(composite(recs).tolist())
        assert sample_comps <= all_comps

    def test_invalid_per_chunk(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(100, seed=3))
        with pytest.raises(ValueError):
            chunk_samples_to_disk(mach, f, per_chunk=0)


class TestApproxQuantilePivots:
    @given(
        n=st.integers(500, 8000),
        n_pivots=st.integers(1, 30),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_rank_error_within_bound(self, n, n_pivots, seed):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(n, seed=seed)
        f = load_input(mach, recs)
        pivots = approx_quantile_pivots(mach, f, n_pivots)
        assert 1 <= len(pivots) <= n_pivots
        bound = pivot_rank_error_bound(n, n_pivots, mach)
        sorted_comps = np.sort(composite(recs))
        ranks = np.searchsorted(sorted_comps, composite(pivots)) + 1
        targets = (np.arange(1, len(pivots) + 1) * n) // (len(pivots) + 1)
        assert np.all(np.abs(ranks - targets) <= bound + n // (len(pivots) + 1))

    def test_exact_in_memory_case(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(100, seed=4)
        f = load_input(mach, recs)
        pivots = approx_quantile_pivots(mach, f, 3)
        sorted_comps = np.sort(composite(recs))
        ranks = np.searchsorted(sorted_comps, composite(pivots)) + 1
        assert list(ranks) == [25, 50, 75]

    def test_linear_io(self):
        mach = Machine(memory=256, block=8)
        n = 8000
        f = load_input(mach, random_permutation(n, seed=5))
        mach.reset_counters()
        approx_quantile_pivots(mach, f, 15)
        assert mach.io.total <= 4 * (n // 8)

    def test_memory_stays_within_budget(self):
        mach = Machine(memory=256, block=8)
        f = load_input(mach, random_permutation(5000, seed=6))
        approx_quantile_pivots(mach, f, 15)
        assert mach.memory.peak <= mach.M
        assert mach.memory.in_use == 0


class TestFanout:
    def test_at_least_two(self):
        assert max_distribution_fanout(Machine(memory=16, block=8)) == 2

    def test_wide_machine(self):
        assert max_distribution_fanout(Machine(memory=4096, block=64)) == 30

    def test_error_bound_zero_for_small_files(self):
        mach = Machine(memory=256, block=8)
        assert pivot_rank_error_bound(100, 5, mach) == 0

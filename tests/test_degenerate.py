"""Tests for the §1.1 degenerate case K = N and other parameter corners."""

import numpy as np
import pytest

from repro.analysis.verify import check_partitioned, check_splitters
from repro.core import approximate_partition, approximate_splitters
from repro.em import Machine, composite
from repro.workloads import few_distinct, load_input, random_permutation


class TestKEqualsN:
    def test_splitters_return_all_but_max(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(200, seed=1)
        f = load_input(mach, recs)
        res = approximate_splitters(mach, f, 200, 1, 1)
        assert res.variant == "degenerate/K=N"
        check_splitters(recs, res.splitters, 1, 1, 200)
        # The splitters are exactly the sorted input minus its maximum.
        srt = np.sort(composite(recs))
        assert np.array_equal(composite(res.splitters), srt[:-1])

    def test_partitioning_into_singletons(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(150, seed=2)
        f = load_input(mach, recs)
        pf = approximate_partition(mach, f, 150, 1, 1)
        check_partitioned(recs, pf, 1, 1, 150)
        pf.free()

    def test_with_duplicates(self):
        mach = Machine(memory=256, block=8)
        recs = few_distinct(120, seed=3, n_distinct=2)
        f = load_input(mach, recs)
        res = approximate_splitters(mach, f, 120, 1, 1)
        check_splitters(recs, res.splitters, 1, 1, 120)

    def test_k_n_with_relaxed_bounds(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(100, seed=4)
        f = load_input(mach, recs)
        res = approximate_splitters(mach, f, 100, 0, 100)
        check_splitters(recs, res.splitters, 0, 100, 100)


class TestSingleElement:
    def test_n1_k1(self):
        mach = Machine(memory=256, block=8)
        recs = random_permutation(1, seed=5)
        f = load_input(mach, recs)
        res = approximate_splitters(mach, f, 1, 1, 1)
        assert len(res.splitters) == 0
        pf = approximate_partition(mach, f, 1, 1, 1)
        assert pf.partition_sizes == [1]
